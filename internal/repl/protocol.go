// Package repl replicates a durable sharded store asynchronously from a
// leader to followers by WAL shipping: the leader tails each shard's
// write-ahead log and streams the raw record payloads — the durability
// encoding is the replication encoding — and each follower applies them
// idempotently through the normal mutation path, so its lock-free read
// and scan paths serve traffic while it trails the leader by a bounded
// tail.
//
// The subscription handshake negotiates per-shard positions (gen, seq):
// the follower states how far it has applied, and the leader resumes the
// tail there. When the position is unreachable — below the leader's GC
// horizon (the generation it needs was deleted by a covering snapshot),
// or beyond the leader's surviving history — the leader streams a
// key-ordered snapshot of the shard's current state off its lock-free
// scan cursor instead (the follower merge-applies it, deleting keys the
// snapshot lacks) and resumes the tail from the position captured just
// before the scan. Shards stream independently; consistency is per-shard
// prefix on the tail path, the natural unit because shard WALs have no
// cross-shard ordering to preserve.
//
// The wire rides the netkv protocol: a follower sends one OpSubscribe
// request and the connection switches into this package's framed stream.
package repl

import (
	"bufio"
	"bytes"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/repro/wormhole/internal/shard"
	"github.com/repro/wormhole/internal/wal"
)

// Handshake magic + version; bumping the version is a wire break.
// Version 2 added epoch fencing: the subscribe payload carries the
// follower's epoch and leadership history, the handshake response carries
// the leader's, and every leader→follower stream frame plus the upstream
// acks are stamped with the sender's epoch.
// Version 3 changed snapshot catch-up to the v2 segment encoding:
// msgSnapChunk bodies carry prefix-compressed pairs (the same
// shared-prefix-length + suffix layout snapshot segments use on disk),
// and the subscribe payload grew a resume section — the follower's
// partially applied snapshot cursors — so a reconnect mid-catch-up
// continues from the last applied key instead of re-sending the
// already-shipped range.
const (
	magic        = "WHRP1"
	protoVersion = 3
)

// Handshake status codes.
const (
	hsOK          byte = 0
	hsMismatch    byte = 1 // shard count or boundary disagreement
	hsUnavailable byte = 2 // leader cannot replicate (volatile, closing, bad request)
	hsStale       byte = 3 // the server is not the current leader: the response epoch outbids it
)

// Stream message types. Every message is framed [len u32][type byte][body]
// with len covering type+body; both directions share the framing, so one
// reader loop serves the follower and the leader's ack reader alike.
const (
	msgBatch     byte = 1 // epoch u64, shard u16, gen u64, startSeq u64, count u32, count×(len u32, payload)
	msgSnapBegin byte = 2 // epoch u64, shard u16, gen u64, seq u64 — the position the tail resumes from
	msgSnapChunk byte = 3 // shard u16, count u32, count×(plen uvarint, slen uvarint, vlen uvarint, suffix, val); first pair's plen is 0
	msgSnapEnd   byte = 4 // shard u16
	msgHeartbeat byte = 5 // epoch u64, shard u16, gen u64, endSeq u64 — the leader's current end
	msgAck       byte = 6 // epoch u64, shard u16, gen u64, seq u64 — follower's applied position
)

const (
	maxMsg = 64 << 20
	// maxBatchBytes bounds one msgBatch's record payload; maxChunkBytes one
	// snapshot chunk's pair bytes.
	maxBatchBytes = 256 << 10
	maxChunkBytes = 256 << 10
)

var errProto = errors.New("repl: protocol error")

// writeMsg frames one message and flushes it.
func writeMsg(w *bufio.Writer, typ byte, body []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(1+len(body)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	return w.Flush()
}

// writeMsgTruncated frames the message with its true length but ships
// only half the body — the fault injector's torn message. The receiver
// must treat the short frame as a dead connection, never apply a prefix.
func writeMsgTruncated(w *bufio.Writer, typ byte, body []byte) {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(1+len(body)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return
	}
	w.Write(body[:len(body)/2])
	w.Flush()
}

// readMsg reads one framed message, reusing buf for the body.
func readMsg(r *bufio.Reader, buf []byte) (typ byte, body, nextBuf []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 || n > maxMsg {
		return 0, nil, buf, fmt.Errorf("%w: message length %d", errProto, n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, buf, err
	}
	return buf[0], buf[1:], buf, nil
}

// appendHistory encodes a leadership history: count u16, then per term
// epoch u64 + start-position count u16 + that many (gen u64, seq u64).
func appendHistory(b []byte, hist []shard.EpochEntry) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(hist)))
	for _, e := range hist {
		b = binary.LittleEndian.AppendUint64(b, e.Epoch)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(e.Start)))
		for _, p := range e.Start {
			b = binary.LittleEndian.AppendUint64(b, p.Gen)
			b = binary.LittleEndian.AppendUint64(b, p.Seq)
		}
	}
	return b
}

// decodeHistory parses an encoded history, returning the remaining bytes.
// Allocation is bounded by the payload length, never by the claimed
// counts, so hostile frames cannot balloon memory.
func decodeHistory(rest []byte) ([]shard.EpochEntry, []byte, error) {
	if len(rest) < 2 {
		return nil, nil, fmt.Errorf("%w: history truncated", errProto)
	}
	n := int(binary.LittleEndian.Uint16(rest[:2]))
	rest = rest[2:]
	var hist []shard.EpochEntry
	for i := 0; i < n; i++ {
		if len(rest) < 10 {
			return nil, nil, fmt.Errorf("%w: history entry truncated", errProto)
		}
		e := shard.EpochEntry{Epoch: binary.LittleEndian.Uint64(rest[:8])}
		ns := int(binary.LittleEndian.Uint16(rest[8:10]))
		rest = rest[10:]
		if len(rest) < ns*16 {
			return nil, nil, fmt.Errorf("%w: history positions truncated", errProto)
		}
		for j := 0; j < ns; j++ {
			e.Start = append(e.Start, wal.Position{
				Gen: binary.LittleEndian.Uint64(rest[:8]),
				Seq: binary.LittleEndian.Uint64(rest[8:16]),
			})
			rest = rest[16:]
		}
		hist = append(hist, e)
	}
	return hist, rest, nil
}

// snapResume is one shard's partially applied snapshot state, carried in
// the subscribe payload: the snapshot's tail-resume position as the
// leader announced it, and the key cursor the follower had applied
// through when the previous connection died.
type snapResume struct {
	shard  int
	pos    wal.Position
	cursor []byte
}

// maxResumeCursor bounds one resume entry's cursor key on the wire.
const maxResumeCursor = 1 << 20

// encodeSubscribe builds the OpSubscribe request payload: the follower's
// epoch, its leadership history, its per-shard applied positions — or no
// positions when it is fresh and the leader should assume genesis
// everywhere — and its in-progress snapshot resume entries, ascending by
// shard.
func encodeSubscribe(epoch uint64, hist []shard.EpochEntry, positions []wal.Position, resume []snapResume) []byte {
	b := append([]byte(magic), protoVersion)
	b = binary.LittleEndian.AppendUint64(b, epoch)
	b = appendHistory(b, hist)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(positions)))
	for _, p := range positions {
		b = binary.LittleEndian.AppendUint64(b, p.Gen)
		b = binary.LittleEndian.AppendUint64(b, p.Seq)
	}
	b = binary.LittleEndian.AppendUint16(b, uint16(len(resume)))
	for _, r := range resume {
		b = binary.LittleEndian.AppendUint16(b, uint16(r.shard))
		b = binary.LittleEndian.AppendUint64(b, r.pos.Gen)
		b = binary.LittleEndian.AppendUint64(b, r.pos.Seq)
		b = binary.LittleEndian.AppendUint32(b, uint32(len(r.cursor)))
		b = append(b, r.cursor...)
	}
	return b
}

// decodeSubscribe parses the handshake payload; nil positions with nil
// error mean a fresh follower. Resume entries must be strictly ascending
// by shard (the encoding is canonical) and their cursors bounded, so a
// hostile payload cannot smuggle duplicates or balloon allocation.
func decodeSubscribe(payload []byte) (epoch uint64, hist []shard.EpochEntry, positions []wal.Position, resume []snapResume, err error) {
	if len(payload) < len(magic)+1+8+2+2 || string(payload[:len(magic)]) != magic {
		return 0, nil, nil, nil, fmt.Errorf("%w: bad subscribe magic", errProto)
	}
	if v := payload[len(magic)]; v != protoVersion {
		return 0, nil, nil, nil, fmt.Errorf("%w: protocol version %d (want %d)", errProto, v, protoVersion)
	}
	rest := payload[len(magic)+1:]
	epoch = binary.LittleEndian.Uint64(rest[:8])
	hist, rest, err = decodeHistory(rest[8:])
	if err != nil {
		return 0, nil, nil, nil, err
	}
	if len(rest) < 2 {
		return 0, nil, nil, nil, fmt.Errorf("%w: subscribe positions truncated", errProto)
	}
	n := int(binary.LittleEndian.Uint16(rest[:2]))
	rest = rest[2:]
	if len(rest) < n*16 {
		return 0, nil, nil, nil, fmt.Errorf("%w: subscribe positions truncated", errProto)
	}
	if n > 0 {
		positions = make([]wal.Position, n)
		for i := range positions {
			positions[i].Gen = binary.LittleEndian.Uint64(rest[:8])
			positions[i].Seq = binary.LittleEndian.Uint64(rest[8:16])
			rest = rest[16:]
		}
	} else {
		rest = rest[n*16:]
	}
	if len(rest) < 2 {
		return 0, nil, nil, nil, fmt.Errorf("%w: subscribe resume truncated", errProto)
	}
	nr := int(binary.LittleEndian.Uint16(rest[:2]))
	rest = rest[2:]
	for i := 0; i < nr; i++ {
		if len(rest) < 2+16+4 {
			return 0, nil, nil, nil, fmt.Errorf("%w: resume entry truncated", errProto)
		}
		r := snapResume{
			shard: int(binary.LittleEndian.Uint16(rest[:2])),
			pos: wal.Position{
				Gen: binary.LittleEndian.Uint64(rest[2:10]),
				Seq: binary.LittleEndian.Uint64(rest[10:18]),
			},
		}
		cl := binary.LittleEndian.Uint32(rest[18:22])
		rest = rest[22:]
		if cl > maxResumeCursor || uint32(len(rest)) < cl {
			return 0, nil, nil, nil, fmt.Errorf("%w: resume cursor truncated", errProto)
		}
		r.cursor = append([]byte(nil), rest[:cl]...)
		rest = rest[cl:]
		if len(resume) > 0 && resume[len(resume)-1].shard >= r.shard {
			return 0, nil, nil, nil, fmt.Errorf("%w: resume entries out of order", errProto)
		}
		resume = append(resume, r)
	}
	if len(rest) != 0 {
		return 0, nil, nil, nil, fmt.Errorf("%w: subscribe trailing bytes", errProto)
	}
	return epoch, hist, positions, resume, nil
}

// appendChunkPair appends one prefix-compressed pair to a msgSnapChunk
// body being built: the shared-prefix length against the previous key in
// the chunk, the suffix, and the value — the disk segment entry layout,
// reused on the wire so catch-up ships compressed bytes.
func appendChunkPair(b []byte, prev, key, val []byte) []byte {
	plen := 0
	if prev != nil {
		n := min(len(prev), len(key))
		for plen < n && prev[plen] == key[plen] {
			plen++
		}
	}
	b = binary.AppendUvarint(b, uint64(plen))
	b = binary.AppendUvarint(b, uint64(len(key)-plen))
	b = binary.AppendUvarint(b, uint64(len(val)))
	b = append(b, key[plen:]...)
	return append(b, val...)
}

// decodeChunkPairs parses a msgSnapChunk body's pair section (after the
// shard and count header) into materialized keys and aliased values.
// The first pair's prefix length must be 0 (chunks decode with no
// cross-chunk context) and keys must be strictly ascending. Allocation
// is bounded by the body length: keys cost their decoded bytes, values
// alias the frame.
func decodeChunkPairs(rest []byte, count uint32) (keys, vals [][]byte, err error) {
	keys = make([][]byte, 0, min(int(count), len(rest)/3+1))
	vals = make([][]byte, 0, cap(keys))
	var prev []byte
	for i := uint32(0); i < count; i++ {
		plen, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, nil, fmt.Errorf("%w: chunk pair truncated", errProto)
		}
		rest = rest[n:]
		slen, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, nil, fmt.Errorf("%w: chunk pair truncated", errProto)
		}
		rest = rest[n:]
		vlen, n := binary.Uvarint(rest)
		if n <= 0 {
			return nil, nil, fmt.Errorf("%w: chunk pair truncated", errProto)
		}
		rest = rest[n:]
		if plen > uint64(len(prev)) || (i == 0 && plen != 0) ||
			slen > uint64(len(rest)) || vlen > uint64(len(rest))-slen {
			return nil, nil, fmt.Errorf("%w: chunk pair lengths", errProto)
		}
		suffix := rest[:slen:slen]
		val := rest[slen : slen+vlen : slen+vlen]
		rest = rest[slen+vlen:]
		if i > 0 && bytes.Compare(suffix, prev[plen:]) <= 0 {
			return nil, nil, fmt.Errorf("%w: chunk keys out of order", errProto)
		}
		key := make([]byte, 0, int(plen)+len(suffix))
		key = append(key, prev[:plen]...)
		key = append(key, suffix...)
		keys = append(keys, key)
		vals = append(vals, val)
		prev = key
	}
	if len(rest) != 0 {
		return nil, nil, fmt.Errorf("%w: chunk trailing bytes", errProto)
	}
	return keys, vals, nil
}

// writeHandshake sends the leader's handshake response: status, the
// leader's epoch and leadership history, shard count, and the partitioner
// boundaries the follower must route by. On hsStale the epoch is the one
// that outbids this server — the follower records it and looks elsewhere.
func writeHandshake(w *bufio.Writer, status byte, epoch uint64, hist []shard.EpochEntry, nshards int, bounds [][]byte) error {
	b := append([]byte(magic), status)
	b = binary.LittleEndian.AppendUint64(b, epoch)
	b = appendHistory(b, hist)
	b = binary.LittleEndian.AppendUint16(b, uint16(nshards))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(bounds)))
	for _, bd := range bounds {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(bd)))
		b = append(b, bd...)
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	return w.Flush()
}

// errNotLeader reports a server that answered the subscription with the
// ordinary request/response protocol instead of the replication
// handshake: a netkv server with no replication source.
var errNotLeader = errors.New("repl: server is not a replication leader")

// readHandshake parses the leader's handshake response. The magic is read
// and checked on its own first: a non-leader answers OpSubscribe with a
// 7-byte netkv StatusNotFound frame, which must be detected from its
// first bytes — blocking for the full handshake header would stall until
// the read deadline instead of surfacing the refusal.
func readHandshake(r *bufio.Reader) (status byte, epoch uint64, hist []shard.EpochEntry, nshards int, bounds [][]byte, err error) {
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(r, head); err != nil {
		return 0, 0, nil, 0, nil, err
	}
	if string(head) != magic {
		return 0, 0, nil, 0, nil, errNotLeader
	}
	hdr := make([]byte, 1+8+2)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, 0, nil, 0, nil, err
	}
	status = hdr[0]
	epoch = binary.LittleEndian.Uint64(hdr[1:9])
	nhist := int(binary.LittleEndian.Uint16(hdr[9:11]))
	entry := make([]byte, 10)
	for i := 0; i < nhist; i++ {
		if _, err := io.ReadFull(r, entry); err != nil {
			return 0, 0, nil, 0, nil, err
		}
		e := shard.EpochEntry{Epoch: binary.LittleEndian.Uint64(entry[:8])}
		ns := int(binary.LittleEndian.Uint16(entry[8:10]))
		var pos [16]byte
		for j := 0; j < ns; j++ {
			if _, err := io.ReadFull(r, pos[:]); err != nil {
				return 0, 0, nil, 0, nil, err
			}
			e.Start = append(e.Start, wal.Position{
				Gen: binary.LittleEndian.Uint64(pos[:8]),
				Seq: binary.LittleEndian.Uint64(pos[8:16]),
			})
		}
		hist = append(hist, e)
	}
	tail := make([]byte, 4)
	if _, err := io.ReadFull(r, tail); err != nil {
		return 0, 0, nil, 0, nil, err
	}
	nshards = int(binary.LittleEndian.Uint16(tail[:2]))
	nbounds := int(binary.LittleEndian.Uint16(tail[2:4]))
	var lenBuf [4]byte
	for i := 0; i < nbounds; i++ {
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return 0, 0, nil, 0, nil, err
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > 1<<20 {
			return 0, 0, nil, 0, nil, fmt.Errorf("%w: boundary length %d", errProto, n)
		}
		bd := make([]byte, n)
		if _, err := io.ReadFull(r, bd); err != nil {
			return 0, 0, nil, 0, nil, err
		}
		bounds = append(bounds, bd)
	}
	return status, epoch, hist, nshards, bounds, nil
}

// appendPosMsg encodes the [epoch u64][shard u16][gen u64][seq u64] body
// shared by msgSnapBegin, msgHeartbeat, and msgAck. The epoch stamp is what
// lets either side detect a cross-term message: a follower drops a
// connection whose frames stop matching the handshake epoch, and a leader
// receiving an ack from a higher epoch knows it has been superseded.
func appendPosMsg(b []byte, epoch uint64, shard int, p wal.Position) []byte {
	b = binary.LittleEndian.AppendUint64(b, epoch)
	b = binary.LittleEndian.AppendUint16(b, uint16(shard))
	b = binary.LittleEndian.AppendUint64(b, p.Gen)
	return binary.LittleEndian.AppendUint64(b, p.Seq)
}

// decodePosMsg parses a snapshot-begin, heartbeat, or ack body.
func decodePosMsg(body []byte) (epoch uint64, shard int, p wal.Position, err error) {
	if len(body) != 26 {
		return 0, 0, wal.Position{}, fmt.Errorf("%w: position message length %d", errProto, len(body))
	}
	epoch = binary.LittleEndian.Uint64(body[:8])
	shard = int(binary.LittleEndian.Uint16(body[8:10]))
	p.Gen = binary.LittleEndian.Uint64(body[10:18])
	p.Seq = binary.LittleEndian.Uint64(body[18:26])
	return epoch, shard, p, nil
}
