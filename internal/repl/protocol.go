// Package repl replicates a durable sharded store asynchronously from a
// leader to followers by WAL shipping: the leader tails each shard's
// write-ahead log and streams the raw record payloads — the durability
// encoding is the replication encoding — and each follower applies them
// idempotently through the normal mutation path, so its lock-free read
// and scan paths serve traffic while it trails the leader by a bounded
// tail.
//
// The subscription handshake negotiates per-shard positions (gen, seq):
// the follower states how far it has applied, and the leader resumes the
// tail there. When the position is unreachable — below the leader's GC
// horizon (the generation it needs was deleted by a covering snapshot),
// or beyond the leader's surviving history — the leader streams a
// key-ordered snapshot of the shard's current state off its lock-free
// scan cursor instead (the follower merge-applies it, deleting keys the
// snapshot lacks) and resumes the tail from the position captured just
// before the scan. Shards stream independently; consistency is per-shard
// prefix on the tail path, the natural unit because shard WALs have no
// cross-shard ordering to preserve.
//
// The wire rides the netkv protocol: a follower sends one OpSubscribe
// request and the connection switches into this package's framed stream.
package repl

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"

	"github.com/repro/wormhole/internal/shard"
	"github.com/repro/wormhole/internal/wal"
)

// Handshake magic + version; bumping the version is a wire break.
// Version 2 added epoch fencing: the subscribe payload carries the
// follower's epoch and leadership history, the handshake response carries
// the leader's, and every leader→follower stream frame plus the upstream
// acks are stamped with the sender's epoch.
const (
	magic        = "WHRP1"
	protoVersion = 2
)

// Handshake status codes.
const (
	hsOK          byte = 0
	hsMismatch    byte = 1 // shard count or boundary disagreement
	hsUnavailable byte = 2 // leader cannot replicate (volatile, closing, bad request)
	hsStale       byte = 3 // the server is not the current leader: the response epoch outbids it
)

// Stream message types. Every message is framed [len u32][type byte][body]
// with len covering type+body; both directions share the framing, so one
// reader loop serves the follower and the leader's ack reader alike.
const (
	msgBatch     byte = 1 // epoch u64, shard u16, gen u64, startSeq u64, count u32, count×(len u32, payload)
	msgSnapBegin byte = 2 // epoch u64, shard u16, gen u64, seq u64 — the position the tail resumes from
	msgSnapChunk byte = 3 // shard u16, count u32, count×(klen u32, key, vlen u32, val)
	msgSnapEnd   byte = 4 // shard u16
	msgHeartbeat byte = 5 // epoch u64, shard u16, gen u64, endSeq u64 — the leader's current end
	msgAck       byte = 6 // epoch u64, shard u16, gen u64, seq u64 — follower's applied position
)

const (
	maxMsg = 64 << 20
	// maxBatchBytes bounds one msgBatch's record payload; maxChunkBytes one
	// snapshot chunk's pair bytes.
	maxBatchBytes = 256 << 10
	maxChunkBytes = 256 << 10
)

var errProto = errors.New("repl: protocol error")

// writeMsg frames one message and flushes it.
func writeMsg(w *bufio.Writer, typ byte, body []byte) error {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(1+len(body)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return err
	}
	if _, err := w.Write(body); err != nil {
		return err
	}
	return w.Flush()
}

// writeMsgTruncated frames the message with its true length but ships
// only half the body — the fault injector's torn message. The receiver
// must treat the short frame as a dead connection, never apply a prefix.
func writeMsgTruncated(w *bufio.Writer, typ byte, body []byte) {
	var hdr [5]byte
	binary.LittleEndian.PutUint32(hdr[:4], uint32(1+len(body)))
	hdr[4] = typ
	if _, err := w.Write(hdr[:]); err != nil {
		return
	}
	w.Write(body[:len(body)/2])
	w.Flush()
}

// readMsg reads one framed message, reusing buf for the body.
func readMsg(r *bufio.Reader, buf []byte) (typ byte, body, nextBuf []byte, err error) {
	var hdr [4]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return 0, nil, buf, err
	}
	n := binary.LittleEndian.Uint32(hdr[:])
	if n < 1 || n > maxMsg {
		return 0, nil, buf, fmt.Errorf("%w: message length %d", errProto, n)
	}
	if cap(buf) < int(n) {
		buf = make([]byte, n)
	}
	buf = buf[:n]
	if _, err := io.ReadFull(r, buf); err != nil {
		return 0, nil, buf, err
	}
	return buf[0], buf[1:], buf, nil
}

// appendHistory encodes a leadership history: count u16, then per term
// epoch u64 + start-position count u16 + that many (gen u64, seq u64).
func appendHistory(b []byte, hist []shard.EpochEntry) []byte {
	b = binary.LittleEndian.AppendUint16(b, uint16(len(hist)))
	for _, e := range hist {
		b = binary.LittleEndian.AppendUint64(b, e.Epoch)
		b = binary.LittleEndian.AppendUint16(b, uint16(len(e.Start)))
		for _, p := range e.Start {
			b = binary.LittleEndian.AppendUint64(b, p.Gen)
			b = binary.LittleEndian.AppendUint64(b, p.Seq)
		}
	}
	return b
}

// decodeHistory parses an encoded history, returning the remaining bytes.
// Allocation is bounded by the payload length, never by the claimed
// counts, so hostile frames cannot balloon memory.
func decodeHistory(rest []byte) ([]shard.EpochEntry, []byte, error) {
	if len(rest) < 2 {
		return nil, nil, fmt.Errorf("%w: history truncated", errProto)
	}
	n := int(binary.LittleEndian.Uint16(rest[:2]))
	rest = rest[2:]
	var hist []shard.EpochEntry
	for i := 0; i < n; i++ {
		if len(rest) < 10 {
			return nil, nil, fmt.Errorf("%w: history entry truncated", errProto)
		}
		e := shard.EpochEntry{Epoch: binary.LittleEndian.Uint64(rest[:8])}
		ns := int(binary.LittleEndian.Uint16(rest[8:10]))
		rest = rest[10:]
		if len(rest) < ns*16 {
			return nil, nil, fmt.Errorf("%w: history positions truncated", errProto)
		}
		for j := 0; j < ns; j++ {
			e.Start = append(e.Start, wal.Position{
				Gen: binary.LittleEndian.Uint64(rest[:8]),
				Seq: binary.LittleEndian.Uint64(rest[8:16]),
			})
			rest = rest[16:]
		}
		hist = append(hist, e)
	}
	return hist, rest, nil
}

// encodeSubscribe builds the OpSubscribe request payload: the follower's
// epoch, its leadership history, and its per-shard applied positions — or
// no positions when it is fresh and the leader should assume genesis
// everywhere.
func encodeSubscribe(epoch uint64, hist []shard.EpochEntry, positions []wal.Position) []byte {
	b := append([]byte(magic), protoVersion)
	b = binary.LittleEndian.AppendUint64(b, epoch)
	b = appendHistory(b, hist)
	b = binary.LittleEndian.AppendUint16(b, uint16(len(positions)))
	for _, p := range positions {
		b = binary.LittleEndian.AppendUint64(b, p.Gen)
		b = binary.LittleEndian.AppendUint64(b, p.Seq)
	}
	return b
}

// decodeSubscribe parses the handshake payload; nil positions with nil
// error mean a fresh follower.
func decodeSubscribe(payload []byte) (epoch uint64, hist []shard.EpochEntry, positions []wal.Position, err error) {
	if len(payload) < len(magic)+1+8+2+2 || string(payload[:len(magic)]) != magic {
		return 0, nil, nil, fmt.Errorf("%w: bad subscribe magic", errProto)
	}
	if v := payload[len(magic)]; v != protoVersion {
		return 0, nil, nil, fmt.Errorf("%w: protocol version %d (want %d)", errProto, v, protoVersion)
	}
	rest := payload[len(magic)+1:]
	epoch = binary.LittleEndian.Uint64(rest[:8])
	hist, rest, err = decodeHistory(rest[8:])
	if err != nil {
		return 0, nil, nil, err
	}
	if len(rest) < 2 {
		return 0, nil, nil, fmt.Errorf("%w: subscribe positions truncated", errProto)
	}
	n := int(binary.LittleEndian.Uint16(rest[:2]))
	rest = rest[2:]
	if len(rest) != n*16 {
		return 0, nil, nil, fmt.Errorf("%w: subscribe positions truncated", errProto)
	}
	if n == 0 {
		return epoch, hist, nil, nil
	}
	positions = make([]wal.Position, n)
	for i := range positions {
		positions[i].Gen = binary.LittleEndian.Uint64(rest[:8])
		positions[i].Seq = binary.LittleEndian.Uint64(rest[8:16])
		rest = rest[16:]
	}
	return epoch, hist, positions, nil
}

// writeHandshake sends the leader's handshake response: status, the
// leader's epoch and leadership history, shard count, and the partitioner
// boundaries the follower must route by. On hsStale the epoch is the one
// that outbids this server — the follower records it and looks elsewhere.
func writeHandshake(w *bufio.Writer, status byte, epoch uint64, hist []shard.EpochEntry, nshards int, bounds [][]byte) error {
	b := append([]byte(magic), status)
	b = binary.LittleEndian.AppendUint64(b, epoch)
	b = appendHistory(b, hist)
	b = binary.LittleEndian.AppendUint16(b, uint16(nshards))
	b = binary.LittleEndian.AppendUint16(b, uint16(len(bounds)))
	for _, bd := range bounds {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(bd)))
		b = append(b, bd...)
	}
	if _, err := w.Write(b); err != nil {
		return err
	}
	return w.Flush()
}

// errNotLeader reports a server that answered the subscription with the
// ordinary request/response protocol instead of the replication
// handshake: a netkv server with no replication source.
var errNotLeader = errors.New("repl: server is not a replication leader")

// readHandshake parses the leader's handshake response. The magic is read
// and checked on its own first: a non-leader answers OpSubscribe with a
// 7-byte netkv StatusNotFound frame, which must be detected from its
// first bytes — blocking for the full handshake header would stall until
// the read deadline instead of surfacing the refusal.
func readHandshake(r *bufio.Reader) (status byte, epoch uint64, hist []shard.EpochEntry, nshards int, bounds [][]byte, err error) {
	head := make([]byte, len(magic))
	if _, err := io.ReadFull(r, head); err != nil {
		return 0, 0, nil, 0, nil, err
	}
	if string(head) != magic {
		return 0, 0, nil, 0, nil, errNotLeader
	}
	hdr := make([]byte, 1+8+2)
	if _, err := io.ReadFull(r, hdr); err != nil {
		return 0, 0, nil, 0, nil, err
	}
	status = hdr[0]
	epoch = binary.LittleEndian.Uint64(hdr[1:9])
	nhist := int(binary.LittleEndian.Uint16(hdr[9:11]))
	entry := make([]byte, 10)
	for i := 0; i < nhist; i++ {
		if _, err := io.ReadFull(r, entry); err != nil {
			return 0, 0, nil, 0, nil, err
		}
		e := shard.EpochEntry{Epoch: binary.LittleEndian.Uint64(entry[:8])}
		ns := int(binary.LittleEndian.Uint16(entry[8:10]))
		var pos [16]byte
		for j := 0; j < ns; j++ {
			if _, err := io.ReadFull(r, pos[:]); err != nil {
				return 0, 0, nil, 0, nil, err
			}
			e.Start = append(e.Start, wal.Position{
				Gen: binary.LittleEndian.Uint64(pos[:8]),
				Seq: binary.LittleEndian.Uint64(pos[8:16]),
			})
		}
		hist = append(hist, e)
	}
	tail := make([]byte, 4)
	if _, err := io.ReadFull(r, tail); err != nil {
		return 0, 0, nil, 0, nil, err
	}
	nshards = int(binary.LittleEndian.Uint16(tail[:2]))
	nbounds := int(binary.LittleEndian.Uint16(tail[2:4]))
	var lenBuf [4]byte
	for i := 0; i < nbounds; i++ {
		if _, err := io.ReadFull(r, lenBuf[:]); err != nil {
			return 0, 0, nil, 0, nil, err
		}
		n := binary.LittleEndian.Uint32(lenBuf[:])
		if n > 1<<20 {
			return 0, 0, nil, 0, nil, fmt.Errorf("%w: boundary length %d", errProto, n)
		}
		bd := make([]byte, n)
		if _, err := io.ReadFull(r, bd); err != nil {
			return 0, 0, nil, 0, nil, err
		}
		bounds = append(bounds, bd)
	}
	return status, epoch, hist, nshards, bounds, nil
}

// appendPosMsg encodes the [epoch u64][shard u16][gen u64][seq u64] body
// shared by msgSnapBegin, msgHeartbeat, and msgAck. The epoch stamp is what
// lets either side detect a cross-term message: a follower drops a
// connection whose frames stop matching the handshake epoch, and a leader
// receiving an ack from a higher epoch knows it has been superseded.
func appendPosMsg(b []byte, epoch uint64, shard int, p wal.Position) []byte {
	b = binary.LittleEndian.AppendUint64(b, epoch)
	b = binary.LittleEndian.AppendUint16(b, uint16(shard))
	b = binary.LittleEndian.AppendUint64(b, p.Gen)
	return binary.LittleEndian.AppendUint64(b, p.Seq)
}

// decodePosMsg parses a snapshot-begin, heartbeat, or ack body.
func decodePosMsg(body []byte) (epoch uint64, shard int, p wal.Position, err error) {
	if len(body) != 26 {
		return 0, 0, wal.Position{}, fmt.Errorf("%w: position message length %d", errProto, len(body))
	}
	epoch = binary.LittleEndian.Uint64(body[:8])
	shard = int(binary.LittleEndian.Uint16(body[8:10]))
	p.Gen = binary.LittleEndian.Uint64(body[10:18])
	p.Seq = binary.LittleEndian.Uint64(body[18:26])
	return epoch, shard, p, nil
}
