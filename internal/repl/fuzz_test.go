package repl

import (
	"bytes"
	"testing"

	"github.com/repro/wormhole/internal/shard"
	"github.com/repro/wormhole/internal/wal"
)

// FuzzSubscribeHandshake throws arbitrary bytes at the subscribe-payload
// decoder — the one parser on the leader that consumes follower-supplied
// input before any authentication of intent. It must never panic or
// balloon memory on hostile counts, and anything it accepts must be
// canonical: re-encoding the decoded values reproduces the input byte for
// byte, so there is exactly one wire form per logical handshake.
func FuzzSubscribeHandshake(f *testing.F) {
	f.Add(encodeSubscribe(0, nil, nil, nil))
	f.Add(encodeSubscribe(1, []shard.EpochEntry{{Epoch: 1}}, []wal.Position{{Gen: 1, Seq: 0}}, nil))
	hist := []shard.EpochEntry{
		{Epoch: 1},
		{Epoch: 4, Start: []wal.Position{{Gen: 2, Seq: 17}, {Gen: 1, Seq: 3}, {Gen: 5, Seq: 1 << 33}}},
	}
	full := encodeSubscribe(7, hist, []wal.Position{{Gen: 3, Seq: 99}, {Gen: 1, Seq: 0}}, nil)
	f.Add(full)
	withResume := encodeSubscribe(7, hist, []wal.Position{{Gen: 3, Seq: 99}, {Gen: 1, Seq: 0}},
		[]snapResume{
			{shard: 0, pos: wal.Position{Gen: 3, Seq: 12}, cursor: []byte("user/0042\x00")},
			{shard: 1, pos: wal.Position{Gen: 1, Seq: 0}, cursor: []byte{0x00}},
		})
	f.Add(withResume)
	f.Add(withResume[:len(withResume)-1])           // truncated resume cursor
	f.Add(full[:len(full)-1])                       // truncated resume count
	f.Add(full[:len(magic)+1])                      // header only
	f.Add([]byte("WHRPX\x03junk"))                  // bad magic
	f.Add(append(full[:0:0], full...)[:len(magic)]) // magic alone
	f.Add(bytes.Repeat([]byte{0xff}, 64))           // hostile counts

	f.Fuzz(func(t *testing.T, payload []byte) {
		epoch, hist, positions, resume, err := decodeSubscribe(payload)
		if err != nil {
			return
		}
		out := encodeSubscribe(epoch, hist, positions, resume)
		if !bytes.Equal(out, payload) {
			t.Fatalf("accepted non-canonical payload:\n in  %x\n out %x", payload, out)
		}
		// And the canonical form must round-trip to the same values.
		e2, h2, p2, r2, err := decodeSubscribe(out)
		if err != nil {
			t.Fatalf("re-decoding own encoding failed: %v", err)
		}
		if e2 != epoch || !shard.HistoryEqual(h2, hist) || len(p2) != len(positions) {
			t.Fatalf("round trip changed values: %d/%v/%v -> %d/%v/%v",
				epoch, hist, positions, e2, h2, p2)
		}
		for i := range p2 {
			if p2[i] != positions[i] {
				t.Fatalf("position %d changed: %v -> %v", i, positions[i], p2[i])
			}
		}
		if len(r2) != len(resume) {
			t.Fatalf("resume count changed: %d -> %d", len(resume), len(r2))
		}
		for i := range r2 {
			if r2[i].shard != resume[i].shard || r2[i].pos != resume[i].pos ||
				!bytes.Equal(r2[i].cursor, resume[i].cursor) {
				t.Fatalf("resume %d changed: %+v -> %+v", i, resume[i], r2[i])
			}
		}
	})
}
