package cuckoo

import (
	"fmt"
	"math/rand"
	"sync"
	"testing"

	"github.com/repro/wormhole/internal/indextest"
)

func TestBasic(t *testing.T) {
	c := New(0)
	for i := 0; i < 1000; i++ {
		c.Set([]byte(fmt.Sprintf("k%05d", i)), []byte(fmt.Sprintf("v%d", i)))
	}
	if c.Count() != 1000 {
		t.Fatalf("Count = %d", c.Count())
	}
	for i := 0; i < 1000; i++ {
		v, ok := c.Get([]byte(fmt.Sprintf("k%05d", i)))
		if !ok || string(v) != fmt.Sprintf("v%d", i) {
			t.Fatalf("Get k%05d failed", i)
		}
	}
	if _, ok := c.Get([]byte("missing")); ok {
		t.Fatal("phantom key")
	}
	c.Set([]byte("k00000"), []byte("updated"))
	if v, _ := c.Get([]byte("k00000")); string(v) != "updated" {
		t.Fatal("update failed")
	}
	if c.Count() != 1000 {
		t.Fatal("update changed count")
	}
}

func TestDelete(t *testing.T) {
	c := New(0)
	const n = 500
	for i := 0; i < n; i++ {
		c.Set([]byte(fmt.Sprintf("d%05d", i)), []byte("x"))
	}
	for i := 0; i < n; i += 2 {
		if !c.Del([]byte(fmt.Sprintf("d%05d", i))) {
			t.Fatalf("Del d%05d failed", i)
		}
	}
	if c.Del([]byte("d00000")) {
		t.Fatal("double delete returned true")
	}
	for i := 0; i < n; i++ {
		_, ok := c.Get([]byte(fmt.Sprintf("d%05d", i)))
		if want := i%2 == 1; ok != want {
			t.Fatalf("Get d%05d = %v want %v", i, ok, want)
		}
	}
}

// TestEvictionAndGrowth starts tiny so the BFS eviction path and resize
// both run many times.
func TestEvictionAndGrowth(t *testing.T) {
	c := New(16)
	const n = 20000
	for i := 0; i < n; i++ {
		c.Set([]byte(fmt.Sprintf("g%07d", i)), []byte{byte(i)})
	}
	if c.Count() != n {
		t.Fatalf("Count = %d", c.Count())
	}
	for i := 0; i < n; i++ {
		v, ok := c.Get([]byte(fmt.Sprintf("g%07d", i)))
		if !ok || v[0] != byte(i) {
			t.Fatalf("lost g%07d", i)
		}
	}
	if lf := c.LoadFactor(); lf < 0.15 || lf > 1 {
		t.Fatalf("implausible load factor %f", lf)
	}
}

func TestModelAgainstReference(t *testing.T) {
	for gi, gen := range []func(*rand.Rand) []byte{
		indextest.GenBinary, indextest.GenASCII, indextest.GenRandom(8),
	} {
		t.Run(fmt.Sprintf("gen%d", gi), func(t *testing.T) {
			indextest.PointOps(t, New(0), int64(90+gi), 4000, gen)
		})
	}
}

func TestConcurrentMixed(t *testing.T) {
	c := New(1024)
	const stable = 2000
	for i := 0; i < stable; i++ {
		c.Set([]byte(fmt.Sprintf("stable-%05d", i)), []byte("s"))
	}
	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			r := rand.New(rand.NewSource(int64(g)))
			for i := 0; i < 5000; i++ {
				switch r.Intn(4) {
				case 0:
					c.Set([]byte(fmt.Sprintf("churn-%d-%05d", g, r.Intn(3000))), []byte("c"))
				case 1:
					c.Del([]byte(fmt.Sprintf("churn-%d-%05d", g, r.Intn(3000))))
				default:
					k := []byte(fmt.Sprintf("stable-%05d", r.Intn(stable)))
					if v, ok := c.Get(k); !ok || string(v) != "s" {
						t.Errorf("lost stable key %q", k)
						return
					}
				}
			}
		}(g)
	}
	wg.Wait()
	for i := 0; i < stable; i++ {
		if _, ok := c.Get([]byte(fmt.Sprintf("stable-%05d", i))); !ok {
			t.Fatalf("stable-%05d missing after churn", i)
		}
	}
}

func TestAltIndexInvolution(t *testing.T) {
	c := New(1 << 16)
	r := rand.New(rand.NewSource(11))
	for i := 0; i < 10000; i++ {
		b := uint32(r.Intn(len(c.buckets)))
		tag := tagOf(uint32(r.Int63()))
		if got := c.altIndex(c.altIndex(b, tag), tag); got != b {
			t.Fatalf("altIndex not an involution: %d -> %d", b, got)
		}
	}
}

func TestFootprint(t *testing.T) {
	c := New(0)
	for i := 0; i < 300; i++ {
		c.Set([]byte(fmt.Sprintf("f%05d", i)), []byte("0123456789"))
	}
	if fp := c.Footprint(); fp < 300*16 {
		t.Fatalf("Footprint = %d", fp)
	}
}
