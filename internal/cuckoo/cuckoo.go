// Package cuckoo implements a bucketized cuckoo hash table in the style of
// libcuckoo (Li et al., EuroSys 2014), the unordered baseline of the
// paper's §4.2 comparison: 4-way set-associative buckets, two candidate
// buckets per key, 8-bit partial-key tags, BFS eviction-path search, lock
// striping for writers, and a global RW resize lock.
package cuckoo

import (
	"bytes"
	"hash/crc32"
	"sync"
	"sync/atomic"
	"unsafe"
)

const (
	slotsPerBucket = 4
	maxBFSDepth    = 5
	stripes        = 2048
)

var crcTable = crc32.MakeTable(crc32.Castagnoli)

type item struct {
	key []byte
	val []byte
}

type bucket struct {
	tags  [slotsPerBucket]uint8
	items [slotsPerBucket]*item
}

// Table is a cuckoo hash table. Call New.
type Table struct {
	resizeMu sync.RWMutex // writers of buckets take RLock; resize takes Lock
	locks    [stripes]sync.Mutex
	buckets  []bucket
	mask     uint32
	count    atomic.Int64
}

// New returns a table pre-sized for about capacity keys (0 for a default).
func New(capacity int) *Table {
	n := 16
	for n*slotsPerBucket < capacity*5/4 {
		n <<= 1
	}
	return &Table{buckets: make([]bucket, n), mask: uint32(n - 1)}
}

// Count returns the number of keys.
func (t *Table) Count() int64 { return t.count.Load() }

func hashOf(key []byte) uint32 { return crc32.Update(0, crcTable, key) }

func tagOf(h uint32) uint8 {
	tg := uint8(h >> 24)
	if tg == 0 {
		tg = 1 // 0 marks an empty slot
	}
	return tg
}

// altIndex derives the second candidate bucket from the first and the tag,
// libcuckoo's partial-key cuckooing: alt(alt(i)) == i.
func (t *Table) altIndex(i uint32, tag uint8) uint32 {
	return (i ^ (uint32(tag) * 0x5bd1e995)) & t.mask
}

func (t *Table) lockPair(i, j uint32) (*sync.Mutex, *sync.Mutex) {
	a, b := i%stripes, j%stripes
	if a > b {
		a, b = b, a
	}
	t.locks[a].Lock()
	if b != a {
		t.locks[b].Lock()
		return &t.locks[a], &t.locks[b]
	}
	return &t.locks[a], nil
}

func unlockPair(a, b *sync.Mutex) {
	if b != nil {
		b.Unlock()
	}
	a.Unlock()
}

func (b *bucket) find(tag uint8, key []byte) int {
	for s := 0; s < slotsPerBucket; s++ {
		if b.tags[s] == tag && b.items[s] != nil && bytes.Equal(b.items[s].key, key) {
			return s
		}
	}
	return -1
}

func (b *bucket) emptySlot() int {
	for s := 0; s < slotsPerBucket; s++ {
		if b.items[s] == nil {
			return s
		}
	}
	return -1
}

// Get returns the value stored under key.
func (t *Table) Get(key []byte) ([]byte, bool) {
	h := hashOf(key)
	tag := tagOf(h)
	t.resizeMu.RLock()
	i1 := h & t.mask
	i2 := t.altIndex(i1, tag)
	la, lb := t.lockPair(i1, i2)
	var val []byte
	ok := false
	if s := t.buckets[i1].find(tag, key); s >= 0 {
		val, ok = t.buckets[i1].items[s].val, true
	} else if s := t.buckets[i2].find(tag, key); s >= 0 {
		val, ok = t.buckets[i2].items[s].val, true
	}
	unlockPair(la, lb)
	t.resizeMu.RUnlock()
	return val, ok
}

// Set inserts or replaces key.
func (t *Table) Set(key, val []byte) {
	for {
		if t.trySet(key, val) {
			return
		}
		t.grow()
	}
}

func (t *Table) trySet(key, val []byte) bool {
	h := hashOf(key)
	tag := tagOf(h)
	t.resizeMu.RLock()
	defer t.resizeMu.RUnlock()
	i1 := h & t.mask
	i2 := t.altIndex(i1, tag)
	la, lb := t.lockPair(i1, i2)
	// Replace in place.
	for _, i := range [2]uint32{i1, i2} {
		if s := t.buckets[i].find(tag, key); s >= 0 {
			t.buckets[i].items[s].val = val
			unlockPair(la, lb)
			return true
		}
	}
	// Fast path: an empty slot in either candidate bucket.
	for _, i := range [2]uint32{i1, i2} {
		if s := t.buckets[i].emptySlot(); s >= 0 {
			t.buckets[i].tags[s] = tag
			t.buckets[i].items[s] = &item{key: key, val: val}
			t.count.Add(1)
			unlockPair(la, lb)
			return true
		}
	}
	unlockPair(la, lb)
	// Slow path: BFS for an eviction chain, then walk it backwards moving
	// one item at a time, validating each hop under its bucket pair locks.
	for attempt := 0; attempt < 8; attempt++ {
		path, ok := t.findPath(i1, i2)
		if !ok {
			return false // table too dense: caller grows
		}
		t.execPath(path)
		// Whether or not the chain fully executed (it may have been raced),
		// retry the fast path: a freed or concurrently vacated slot is
		// picked up here.
		la, lb = t.lockPair(i1, i2)
		for _, i := range [2]uint32{i1, i2} {
			if s := t.buckets[i].emptySlot(); s >= 0 {
				t.buckets[i].tags[s] = tag
				t.buckets[i].items[s] = &item{key: key, val: val}
				t.count.Add(1)
				unlockPair(la, lb)
				return true
			}
		}
		unlockPair(la, lb)
	}
	return false
}

type pathStep struct {
	bucket uint32
	slot   int
}

type bfsNode struct {
	bucket uint32
	parent int
	slot   int // slot in the parent's bucket whose eviction leads here
	depth  int
}

// findPath BFS-searches for a chain of displacements from either candidate
// bucket to a bucket with a free slot. Each bucket is examined under its
// own stripe lock; the snapshot may go stale immediately, which is fine
// because execPath re-validates every hop before moving anything.
func (t *Table) findPath(i1, i2 uint32) ([]pathStep, bool) {
	queue := []bfsNode{{bucket: i1, parent: -1}, {bucket: i2, parent: -1}}
	for qi := 0; qi < len(queue) && qi < 512; qi++ {
		b := queue[qi].bucket
		mu := &t.locks[b%stripes]
		mu.Lock()
		if queue[qi].parent != -1 && t.buckets[b].emptySlot() >= 0 {
			mu.Unlock()
			// Reconstruct the displacement chain, evictions root-first.
			var path []pathStep
			for n := qi; queue[n].parent != -1; n = queue[n].parent {
				p := queue[n].parent
				path = append(path, pathStep{bucket: queue[p].bucket, slot: queue[n].slot})
			}
			for i, j := 0, len(path)-1; i < j; i, j = i+1, j-1 {
				path[i], path[j] = path[j], path[i]
			}
			return path, true
		}
		if queue[qi].depth < maxBFSDepth {
			for s := 0; s < slotsPerBucket; s++ {
				if t.buckets[b].items[s] == nil {
					continue
				}
				alt := t.altIndex(b, t.buckets[b].tags[s])
				queue = append(queue, bfsNode{
					bucket: alt, parent: qi, slot: s, depth: queue[qi].depth + 1,
				})
			}
		}
		mu.Unlock()
	}
	return nil, false
}

// execPath moves items backwards along the chain: the last displacement
// first, so every move lands in a currently-free slot. Each move reads the
// victim under its stripe lock, re-locks the bucket pair, and validates
// that the slot still holds the same item; any mismatch aborts (the caller
// retries with a fresh path).
func (t *Table) execPath(path []pathStep) bool {
	for k := len(path) - 1; k >= 0; k-- {
		src := path[k].bucket
		s := path[k].slot
		mu := &t.locks[src%stripes]
		mu.Lock()
		it := t.buckets[src].items[s]
		tag := t.buckets[src].tags[s]
		mu.Unlock()
		if it == nil {
			return false
		}
		dst := t.altIndex(src, tag)
		la, lb := t.lockPair(src, dst)
		if t.buckets[src].items[s] != it {
			unlockPair(la, lb)
			return false
		}
		free := t.buckets[dst].emptySlot()
		if free < 0 {
			unlockPair(la, lb)
			return false
		}
		t.buckets[dst].tags[free] = tag
		t.buckets[dst].items[free] = it
		t.buckets[src].items[s] = nil
		t.buckets[src].tags[s] = 0
		unlockPair(la, lb)
	}
	return true
}

// grow doubles the table under the exclusive resize lock.
func (t *Table) grow() {
	t.resizeMu.Lock()
	defer t.resizeMu.Unlock()
	old := t.buckets
	t.buckets = make([]bucket, len(old)*2)
	t.mask = uint32(len(t.buckets) - 1)
	for bi := range old {
		for s := 0; s < slotsPerBucket; s++ {
			it := old[bi].items[s]
			if it == nil {
				continue
			}
			h := hashOf(it.key)
			tag := tagOf(h)
			i1 := h & t.mask
			placed := false
			for _, i := range [2]uint32{i1, t.altIndex(i1, tag)} {
				if fs := t.buckets[i].emptySlot(); fs >= 0 {
					t.buckets[i].tags[fs] = tag
					t.buckets[i].items[fs] = it
					placed = true
					break
				}
			}
			if !placed {
				// Exceedingly rare mid-resize collision pile-up: fall back
				// to in-place cuckooing with exclusive access.
				if !t.evictExclusive(i1, tag, it) {
					panic("cuckoo: resize failed to place item")
				}
			}
		}
	}
}

// evictExclusive performs a simple random-walk eviction while the caller
// holds the exclusive resize lock (no other accessor can run).
func (t *Table) evictExclusive(i uint32, tag uint8, it *item) bool {
	curI, curTag, curIt := i, tag, it
	for hop := 0; hop < 256; hop++ {
		b := &t.buckets[curI]
		if s := b.emptySlot(); s >= 0 {
			b.tags[s] = curTag
			b.items[s] = curIt
			return true
		}
		s := hop % slotsPerBucket
		vTag, vIt := b.tags[s], b.items[s]
		b.tags[s], b.items[s] = curTag, curIt
		curI = t.altIndex(curI, vTag)
		curTag, curIt = vTag, vIt
	}
	return false
}

// Del removes key, reporting whether it was present.
func (t *Table) Del(key []byte) bool {
	h := hashOf(key)
	tag := tagOf(h)
	t.resizeMu.RLock()
	defer t.resizeMu.RUnlock()
	i1 := h & t.mask
	i2 := t.altIndex(i1, tag)
	la, lb := t.lockPair(i1, i2)
	defer unlockPair(la, lb)
	for _, i := range [2]uint32{i1, i2} {
		if s := t.buckets[i].find(tag, key); s >= 0 {
			t.buckets[i].items[s] = nil
			t.buckets[i].tags[s] = 0
			t.count.Add(-1)
			return true
		}
	}
	return false
}

// LoadFactor reports occupied slots over total slots (test support).
func (t *Table) LoadFactor() float64 {
	return float64(t.count.Load()) / float64(len(t.buckets)*slotsPerBucket)
}

// Footprint returns approximate heap bytes.
func (t *Table) Footprint() int64 {
	total := int64(len(t.buckets)) * int64(unsafe.Sizeof(bucket{}))
	t.resizeMu.RLock()
	defer t.resizeMu.RUnlock()
	for bi := range t.buckets {
		for s := 0; s < slotsPerBucket; s++ {
			if it := t.buckets[bi].items[s]; it != nil {
				total += int64(unsafe.Sizeof(item{})) + int64(len(it.key)+len(it.val))
			}
		}
	}
	return total
}
