package vfs

import (
	"errors"
	"io"
	"os"
	"path/filepath"
	"syscall"
	"testing"
)

// exercise runs the same lifecycle against any FS: create, write, sync,
// rename, read back, remove.
func exercise(t *testing.T, fs FS, dir string) {
	t.Helper()
	if err := fs.MkdirAll(dir, 0o755); err != nil {
		t.Fatalf("MkdirAll: %v", err)
	}
	p := filepath.Join(dir, "a.log")
	f, err := fs.OpenFile(p, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := f.Write([]byte("hello ")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if _, err := f.Write([]byte("world")); err != nil {
		t.Fatalf("Write: %v", err)
	}
	if err := f.Sync(); err != nil {
		t.Fatalf("Sync: %v", err)
	}
	var at [5]byte
	if _, err := f.ReadAt(at[:], 6); err != nil {
		t.Fatalf("ReadAt: %v", err)
	}
	if string(at[:]) != "world" {
		t.Fatalf("ReadAt = %q", at)
	}
	if err := f.Close(); err != nil {
		t.Fatalf("Close: %v", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}

	tmp, err := fs.CreateTemp(dir, "a.log.tmp*")
	if err != nil {
		t.Fatalf("CreateTemp: %v", err)
	}
	if _, err := tmp.Write(make([]byte, 16)); err != nil {
		t.Fatalf("tmp write: %v", err)
	}
	if _, err := tmp.WriteAt([]byte{7}, 0); err != nil {
		t.Fatalf("tmp WriteAt: %v", err)
	}
	if err := tmp.Sync(); err != nil {
		t.Fatalf("tmp Sync: %v", err)
	}
	tmpName := tmp.Name()
	if err := tmp.Close(); err != nil {
		t.Fatalf("tmp Close: %v", err)
	}
	p2 := filepath.Join(dir, "b.snap")
	if err := fs.Rename(tmpName, p2); err != nil {
		t.Fatalf("Rename: %v", err)
	}
	if err := fs.SyncDir(dir); err != nil {
		t.Fatalf("SyncDir: %v", err)
	}
	b, err := fs.ReadFile(p2)
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if len(b) != 16 || b[0] != 7 {
		t.Fatalf("ReadFile = %v", b)
	}
	ents, err := fs.ReadDir(dir)
	if err != nil {
		t.Fatalf("ReadDir: %v", err)
	}
	names := make([]string, len(ents))
	for i, e := range ents {
		names[i] = e.Name()
	}
	if len(names) != 2 || names[0] != "a.log" || names[1] != "b.snap" {
		t.Fatalf("ReadDir = %v", names)
	}
	if _, err := fs.Stat(p); err != nil {
		t.Fatalf("Stat: %v", err)
	}
	if _, err := fs.Stat(filepath.Join(dir, "nope")); !os.IsNotExist(err) {
		t.Fatalf("Stat missing: %v", err)
	}
	if err := fs.Remove(p2); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	if _, err := fs.Stat(p2); !os.IsNotExist(err) {
		t.Fatalf("Stat removed: %v", err)
	}

	lk, err := fs.TryLock(filepath.Join(dir, "LOCK"))
	if err != nil {
		t.Fatalf("TryLock: %v", err)
	}
	if _, err := fs.TryLock(filepath.Join(dir, "LOCK")); err == nil {
		t.Fatal("second TryLock succeeded")
	}
	if err := lk.Close(); err != nil {
		t.Fatalf("unlock: %v", err)
	}
	lk2, err := fs.TryLock(filepath.Join(dir, "LOCK"))
	if err != nil {
		t.Fatalf("relock: %v", err)
	}
	lk2.Close()
}

func TestOSFS(t *testing.T) {
	exercise(t, OS(), filepath.Join(t.TempDir(), "d"))
}

func TestMemFS(t *testing.T) {
	exercise(t, NewMemFS(), "/d")
}

func TestInjectorPassthrough(t *testing.T) {
	exercise(t, NewInjector(NewMemFS()), "/d")
}

func TestMemCrashDropsUnsynced(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("/d", 0o755)
	f, _ := m.OpenFile("/d/a", os.O_CREATE|os.O_RDWR, 0o644)
	f.Write([]byte("durable"))
	f.Sync()
	m.SyncDir("/d")
	f.Write([]byte("volatile"))

	m.Crash()
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("stale handle write: %v", err)
	}
	if _, err := m.Open("/d/a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("open while down: %v", err)
	}
	m.Restart()
	if _, err := f.Write([]byte("x")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("stale handle after restart: %v", err)
	}
	b, err := m.ReadFile("/d/a")
	if err != nil {
		t.Fatalf("ReadFile: %v", err)
	}
	if string(b) != "durable" {
		t.Fatalf("after crash = %q", b)
	}
}

func TestMemCrashTornTail(t *testing.T) {
	m := NewMemFS()
	m.TornTail = func(unsynced int) int { return 3 }
	m.MkdirAll("/d", 0o755)
	f, _ := m.OpenFile("/d/a", os.O_CREATE|os.O_RDWR, 0o644)
	f.Write([]byte("base"))
	f.Sync()
	m.SyncDir("/d")
	f.Write([]byte("ABCDEF"))
	m.Crash()
	m.Restart()
	b, _ := m.ReadFile("/d/a")
	if string(b) != "baseABC" {
		t.Fatalf("torn tail = %q", b)
	}
}

func TestMemCrashNamespace(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("/d", 0o755)

	// Created, synced, dirent committed: survives.
	g, _ := m.OpenFile("/d/kept", os.O_CREATE|os.O_RDWR, 0o644)
	g.Write([]byte("y"))
	g.Sync()
	g.Close()
	m.SyncDir("/d")

	// Created after the directory sync, never dir-synced: vanishes.
	f, _ := m.OpenFile("/d/unsynced", os.O_CREATE|os.O_RDWR, 0o644)
	f.Write([]byte("x"))
	f.Sync()
	f.Close()

	// Removed but removal not dir-synced: reappears.
	m.Remove("/d/kept")

	m.Crash()
	m.Restart()
	if _, err := m.Stat("/d/unsynced"); !os.IsNotExist(err) {
		t.Fatalf("unsynced dirent survived: %v", err)
	}
	b, err := m.ReadFile("/d/kept")
	if err != nil || string(b) != "y" {
		t.Fatalf("unsynced removal stuck: %q %v", b, err)
	}

	// Lock released by the crash.
	if _, err := m.TryLock("/d/LOCK2"); err != nil {
		t.Fatalf("TryLock pre-crash: %v", err)
	}
	m.Crash()
	m.Restart()
	if _, err := m.TryLock("/d/LOCK2"); err != nil {
		t.Fatalf("TryLock after crash: %v", err)
	}
}

func TestMemUnlinkKeepsHandles(t *testing.T) {
	m := NewMemFS()
	m.MkdirAll("/d", 0o755)
	f, _ := m.OpenFile("/d/a", os.O_CREATE|os.O_RDWR, 0o644)
	f.Write([]byte("content"))
	r, err := m.Open("/d/a")
	if err != nil {
		t.Fatalf("Open: %v", err)
	}
	if err := m.Remove("/d/a"); err != nil {
		t.Fatalf("Remove: %v", err)
	}
	var buf [7]byte
	if _, err := r.ReadAt(buf[:], 0); err != nil {
		t.Fatalf("ReadAt after unlink: %v", err)
	}
	if string(buf[:]) != "content" {
		t.Fatalf("ReadAt = %q", buf)
	}
}

func TestInjectorENOSPC(t *testing.T) {
	m := NewMemFS()
	inj := NewInjector(m)
	m.MkdirAll("/d", 0o755)
	inj.AddRule(Rule{Kind: KindWrite, PathContains: "wal-", Err: syscall.ENOSPC})
	f, err := inj.OpenFile("/d/wal-0001.log", os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		t.Fatalf("OpenFile: %v", err)
	}
	if _, err := f.Write([]byte("x")); !errors.Is(err, syscall.ENOSPC) {
		t.Fatalf("want ENOSPC, got %v", err)
	}
	g, _ := inj.OpenFile("/d/other", os.O_CREATE|os.O_RDWR, 0o644)
	if _, err := g.Write([]byte("x")); err != nil {
		t.Fatalf("unmatched path faulted: %v", err)
	}
	inj.ClearRules()
	if _, err := f.Write([]byte("x")); err != nil {
		t.Fatalf("after ClearRules: %v", err)
	}
}

func TestInjectorShortWriteAndCount(t *testing.T) {
	m := NewMemFS()
	inj := NewInjector(m)
	m.MkdirAll("/d", 0o755)
	f, _ := inj.OpenFile("/d/a", os.O_CREATE|os.O_RDWR, 0o644)
	inj.AddRule(Rule{Kind: KindWrite, ShortWrite: true, Count: 1})
	n, err := f.Write([]byte("abcdef"))
	if n != 3 || !errors.Is(err, io.ErrShortWrite) {
		t.Fatalf("short write: n=%d err=%v", n, err)
	}
	if _, err := f.Write([]byte("rest")); err != nil {
		t.Fatalf("Count=1 rule still firing: %v", err)
	}
	b, _ := m.ReadFile("/d/a")
	if string(b) != "abcrest" {
		t.Fatalf("contents = %q", b)
	}
}

func TestInjectorCrashSchedule(t *testing.T) {
	m := NewMemFS()
	inj := NewInjector(m)
	m.MkdirAll("/d", 0o755)
	f, _ := inj.OpenFile("/d/a", os.O_CREATE|os.O_RDWR, 0o644)
	f.Write([]byte("one"))
	f.Sync()
	inj.Inner().(*MemFS).SyncDir("/d") // bypass counting for setup

	// Crash on the next write.
	at := inj.Ops()
	inj.AddRule(Rule{Kind: KindWrite, After: at, Count: 1, Crash: true})
	if _, err := f.Write([]byte("two")); !errors.Is(err, ErrCrashed) {
		t.Fatalf("crash rule: %v", err)
	}
	if !m.Down() {
		t.Fatal("CrashFn not invoked")
	}
	// Everything after the crash fails too, even unmatched ops.
	if _, err := inj.Open("/d/a"); !errors.Is(err, ErrCrashed) {
		t.Fatalf("post-crash op: %v", err)
	}
	m.Restart()
	inj.ClearRules()
	b, err := inj.ReadFile("/d/a")
	if err != nil || string(b) != "one" {
		t.Fatalf("recovered = %q, %v", b, err)
	}
}

func TestInjectorObserve(t *testing.T) {
	m := NewMemFS()
	inj := NewInjector(m)
	m.MkdirAll("/d", 0o755)
	var kinds []Kind
	inj.Observe = func(n int64, kind Kind, path string) { kinds = append(kinds, kind) }
	f, _ := inj.OpenFile("/d/a", os.O_CREATE|os.O_RDWR, 0o644)
	f.Write([]byte("x"))
	f.Sync()
	inj.SyncDir("/d")
	want := []Kind{KindCreate, KindWrite, KindSync, KindSyncDir}
	if len(kinds) != len(want) {
		t.Fatalf("observed %v", kinds)
	}
	for i := range want {
		if kinds[i] != want[i] {
			t.Fatalf("observed %v, want %v", kinds, want)
		}
	}
}
