package vfs

import (
	"errors"
	"fmt"
	"io"
	iofs "io/fs"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"
)

// ErrCrashed is returned by every operation on a MemFS between Crash and
// Restart, and by any handle opened before the crash forever after —
// simulated power loss invalidates file descriptors the way a real one
// does.
var ErrCrashed = errors.New("vfs: filesystem crashed")

// MemFS is an in-memory filesystem that models durability precisely
// enough to simulate power loss. Every file tracks two images: the
// volatile contents (what reads observe) and the synced contents (what a
// crash preserves — updated only by Sync). The namespace is likewise
// two-layer: creations, renames and removals are volatile until SyncDir
// on the parent directory commits them, exactly the contract the WAL
// store is written against. Crash discards all volatile state — keeping
// an optional torn tail of unsynced appended bytes — and invalidates
// every open handle; Restart brings the durable image back online.
//
// Removed files stay readable through handles opened before the
// removal (POSIX unlink semantics), which the replication sender's
// segment readers depend on across WAL GC.
type MemFS struct {
	mu sync.Mutex
	// TornTail, when set, is consulted during Crash for each file whose
	// volatile image extends past its synced image: given the unsynced
	// tail length it returns how many of those bytes survive (a torn
	// write). Nil means none survive. Called under the FS lock; must not
	// re-enter the FS.
	TornTail func(unsynced int) int

	files   map[string]*memFile // volatile namespace
	durable map[string]*memFile // namespace as of the last covering SyncDir
	dirs    map[string]bool
	locks   map[string]bool
	epoch   int
	down    bool
	tmpSeq  int
}

// NewMemFS returns an empty in-memory filesystem.
func NewMemFS() *MemFS {
	return &MemFS{
		files:   make(map[string]*memFile),
		durable: make(map[string]*memFile),
		dirs:    make(map[string]bool),
		locks:   make(map[string]bool),
	}
}

type memFile struct {
	name   string
	data   []byte
	synced []byte
	mtime  time.Time
}

// Crash simulates power loss: the volatile namespace is replaced by the
// durable one, every surviving file's contents revert to its synced
// image plus an optional torn tail of unsynced appended bytes, all
// advisory locks evaporate (the process died), and every open handle is
// invalidated. Operations fail with ErrCrashed until Restart.
func (m *MemFS) Crash() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.crashLocked()
}

func (m *MemFS) crashLocked() {
	if m.down {
		return
	}
	m.down = true
	m.epoch++
	m.locks = make(map[string]bool)
	next := make(map[string]*memFile, len(m.durable))
	reverted := make(map[*memFile]bool)
	for name, f := range m.durable {
		if !reverted[f] {
			reverted[f] = true
			keep := 0
			if unsynced := len(f.data) - len(f.synced); unsynced > 0 && m.TornTail != nil {
				keep = m.TornTail(unsynced)
				if keep < 0 {
					keep = 0
				}
				if keep > unsynced {
					keep = unsynced
				}
			}
			img := make([]byte, 0, len(f.synced)+keep)
			img = append(img, f.synced...)
			if keep > 0 {
				img = append(img, f.data[len(f.synced):len(f.synced)+keep]...)
			}
			f.data = img
			f.synced = append([]byte(nil), f.synced...)
		}
		next[name] = f
	}
	m.files = next
}

// Restart brings the filesystem back online on its durable image. Handles
// opened before the crash stay dead.
func (m *MemFS) Restart() {
	m.mu.Lock()
	defer m.mu.Unlock()
	m.down = false
}

// Down reports whether the filesystem is between Crash and Restart.
func (m *MemFS) Down() bool {
	m.mu.Lock()
	defer m.mu.Unlock()
	return m.down
}

func (m *MemFS) pathErr(op, name string, err error) error {
	return &os.PathError{Op: op, Path: name, Err: err}
}

func (m *MemFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	name = filepath.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return nil, m.pathErr("open", name, ErrCrashed)
	}
	f, ok := m.files[name]
	switch {
	case ok && flag&os.O_CREATE != 0 && flag&os.O_EXCL != 0:
		return nil, m.pathErr("open", name, iofs.ErrExist)
	case !ok && flag&os.O_CREATE == 0:
		return nil, m.pathErr("open", name, iofs.ErrNotExist)
	case !ok:
		f = &memFile{name: name, mtime: time.Now()}
		m.files[name] = f
	}
	if flag&os.O_TRUNC != 0 {
		f.data = nil
	}
	h := &memHandle{fs: m, f: f, name: name, epoch: m.epoch, rdonly: flag&(os.O_WRONLY|os.O_RDWR) == 0}
	if flag&os.O_APPEND != 0 {
		h.pos = int64(len(f.data))
	}
	return h, nil
}

func (m *MemFS) Open(name string) (File, error) {
	return m.OpenFile(name, os.O_RDONLY, 0)
}

func (m *MemFS) CreateTemp(dir, pattern string) (File, error) {
	m.mu.Lock()
	if m.down {
		m.mu.Unlock()
		return nil, m.pathErr("createtemp", dir, ErrCrashed)
	}
	m.tmpSeq++
	seq := m.tmpSeq
	m.mu.Unlock()
	var name string
	if i := strings.LastIndex(pattern, "*"); i >= 0 {
		name = pattern[:i] + fmt.Sprintf("%06d", seq) + pattern[i+1:]
	} else {
		name = pattern + fmt.Sprintf("%06d", seq)
	}
	return m.OpenFile(filepath.Join(dir, name), os.O_CREATE|os.O_EXCL|os.O_RDWR, 0o600)
}

func (m *MemFS) Rename(oldpath, newpath string) error {
	oldpath, newpath = filepath.Clean(oldpath), filepath.Clean(newpath)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return m.pathErr("rename", oldpath, ErrCrashed)
	}
	f, ok := m.files[oldpath]
	if !ok {
		return m.pathErr("rename", oldpath, iofs.ErrNotExist)
	}
	delete(m.files, oldpath)
	m.files[newpath] = f
	f.name = newpath
	return nil
}

func (m *MemFS) Remove(name string) error {
	name = filepath.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return m.pathErr("remove", name, ErrCrashed)
	}
	if _, ok := m.files[name]; !ok {
		return m.pathErr("remove", name, iofs.ErrNotExist)
	}
	delete(m.files, name)
	return nil
}

func (m *MemFS) Stat(name string) (os.FileInfo, error) {
	name = filepath.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return nil, m.pathErr("stat", name, ErrCrashed)
	}
	if f, ok := m.files[name]; ok {
		return memInfo{name: filepath.Base(name), size: int64(len(f.data)), mtime: f.mtime}, nil
	}
	if m.dirs[name] {
		return memInfo{name: filepath.Base(name), dir: true}, nil
	}
	return nil, m.pathErr("stat", name, iofs.ErrNotExist)
}

func (m *MemFS) ReadDir(name string) ([]os.DirEntry, error) {
	name = filepath.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return nil, m.pathErr("readdir", name, ErrCrashed)
	}
	seen := make(map[string]os.DirEntry)
	for p, f := range m.files {
		if filepath.Dir(p) == name {
			base := filepath.Base(p)
			seen[base] = memDirEntry{info: memInfo{name: base, size: int64(len(f.data)), mtime: f.mtime}}
		}
	}
	for d := range m.dirs {
		if filepath.Dir(d) == name {
			base := filepath.Base(d)
			seen[base] = memDirEntry{info: memInfo{name: base, dir: true}}
		}
	}
	if len(seen) == 0 && !m.dirs[name] {
		return nil, m.pathErr("readdir", name, iofs.ErrNotExist)
	}
	names := make([]string, 0, len(seen))
	for n := range seen {
		names = append(names, n)
	}
	sort.Strings(names)
	out := make([]os.DirEntry, len(names))
	for i, n := range names {
		out[i] = seen[n]
	}
	return out, nil
}

func (m *MemFS) MkdirAll(path string, perm os.FileMode) error {
	path = filepath.Clean(path)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return m.pathErr("mkdir", path, ErrCrashed)
	}
	for p := path; p != "." && p != "/" && p != ""; p = filepath.Dir(p) {
		m.dirs[p] = true
	}
	return nil
}

func (m *MemFS) ReadFile(name string) ([]byte, error) {
	name = filepath.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return nil, m.pathErr("read", name, ErrCrashed)
	}
	f, ok := m.files[name]
	if !ok {
		return nil, m.pathErr("read", name, iofs.ErrNotExist)
	}
	return append([]byte(nil), f.data...), nil
}

// SyncDir commits the directory's entries: every live name under dir
// becomes durable, every removed or renamed-away name is durably gone.
func (m *MemFS) SyncDir(dir string) error {
	dir = filepath.Clean(dir)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return m.pathErr("syncdir", dir, ErrCrashed)
	}
	for p, f := range m.files {
		if filepath.Dir(p) == dir {
			m.durable[p] = f
		}
	}
	for p := range m.durable {
		if filepath.Dir(p) == dir {
			if _, live := m.files[p]; !live {
				delete(m.durable, p)
			}
		}
	}
	return nil
}

type memLock struct {
	fs   *MemFS
	name string
}

func (l memLock) Close() error {
	l.fs.mu.Lock()
	defer l.fs.mu.Unlock()
	delete(l.fs.locks, l.name)
	return nil
}

func (m *MemFS) TryLock(name string) (io.Closer, error) {
	name = filepath.Clean(name)
	m.mu.Lock()
	defer m.mu.Unlock()
	if m.down {
		return nil, m.pathErr("lock", name, ErrCrashed)
	}
	if m.locks[name] {
		return nil, m.pathErr("lock", name, errors.New("resource temporarily unavailable"))
	}
	m.locks[name] = true
	if _, ok := m.files[name]; !ok {
		m.files[name] = &memFile{name: name, mtime: time.Now()}
	}
	return memLock{fs: m, name: name}, nil
}

// memHandle is an open file. A handle outlives Remove (unlink semantics)
// but not Crash.
type memHandle struct {
	fs     *MemFS
	f      *memFile
	name   string
	pos    int64
	epoch  int
	rdonly bool
	closed bool
}

// check validates the handle under the FS lock; callers hold nothing.
func (h *memHandle) check(op string) error {
	if h.closed {
		return &os.PathError{Op: op, Path: h.name, Err: iofs.ErrClosed}
	}
	if h.epoch != h.fs.epoch || h.fs.down {
		return &os.PathError{Op: op, Path: h.name, Err: ErrCrashed}
	}
	return nil
}

func (h *memHandle) Name() string { return h.name }

func (h *memHandle) Read(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.check("read"); err != nil {
		return 0, err
	}
	if h.pos >= int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[h.pos:])
	h.pos += int64(n)
	return n, nil
}

func (h *memHandle) ReadAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.check("read"); err != nil {
		return 0, err
	}
	if off >= int64(len(h.f.data)) {
		return 0, io.EOF
	}
	n := copy(p, h.f.data[off:])
	if n < len(p) {
		return n, io.EOF
	}
	return n, nil
}

func (h *memHandle) writeAt(p []byte, off int64) int {
	if grow := off + int64(len(p)) - int64(len(h.f.data)); grow > 0 {
		h.f.data = append(h.f.data, make([]byte, grow)...)
	}
	h.f.mtime = time.Now()
	return copy(h.f.data[off:], p)
}

func (h *memHandle) Write(p []byte) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.check("write"); err != nil {
		return 0, err
	}
	if h.rdonly {
		return 0, &os.PathError{Op: "write", Path: h.name, Err: iofs.ErrPermission}
	}
	n := h.writeAt(p, h.pos)
	h.pos += int64(n)
	return n, nil
}

func (h *memHandle) WriteAt(p []byte, off int64) (int, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.check("write"); err != nil {
		return 0, err
	}
	if h.rdonly {
		return 0, &os.PathError{Op: "write", Path: h.name, Err: iofs.ErrPermission}
	}
	return h.writeAt(p, off), nil
}

func (h *memHandle) Seek(offset int64, whence int) (int64, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.check("seek"); err != nil {
		return 0, err
	}
	switch whence {
	case io.SeekStart:
		h.pos = offset
	case io.SeekCurrent:
		h.pos += offset
	case io.SeekEnd:
		h.pos = int64(len(h.f.data)) + offset
	}
	if h.pos < 0 {
		h.pos = 0
	}
	return h.pos, nil
}

func (h *memHandle) Sync() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.check("sync"); err != nil {
		return err
	}
	h.f.synced = append([]byte(nil), h.f.data...)
	return nil
}

func (h *memHandle) Truncate(size int64) error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.check("truncate"); err != nil {
		return err
	}
	if size < 0 {
		return &os.PathError{Op: "truncate", Path: h.name, Err: iofs.ErrInvalid}
	}
	if size <= int64(len(h.f.data)) {
		h.f.data = h.f.data[:size]
	} else {
		h.f.data = append(h.f.data, make([]byte, size-int64(len(h.f.data)))...)
	}
	return nil
}

func (h *memHandle) Stat() (os.FileInfo, error) {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if err := h.check("stat"); err != nil {
		return nil, err
	}
	return memInfo{name: filepath.Base(h.name), size: int64(len(h.f.data)), mtime: h.f.mtime}, nil
}

func (h *memHandle) Close() error {
	h.fs.mu.Lock()
	defer h.fs.mu.Unlock()
	if h.closed {
		return nil
	}
	h.closed = true
	return nil
}

type memInfo struct {
	name  string
	size  int64
	dir   bool
	mtime time.Time
}

func (i memInfo) Name() string { return i.name }
func (i memInfo) Size() int64  { return i.size }
func (i memInfo) Mode() os.FileMode {
	if i.dir {
		return os.ModeDir | 0o755
	}
	return 0o644
}
func (i memInfo) ModTime() time.Time { return i.mtime }
func (i memInfo) IsDir() bool        { return i.dir }
func (i memInfo) Sys() any           { return nil }

type memDirEntry struct{ info memInfo }

func (e memDirEntry) Name() string               { return e.info.name }
func (e memDirEntry) IsDir() bool                { return e.info.dir }
func (e memDirEntry) Type() os.FileMode          { return e.info.Mode().Type() }
func (e memDirEntry) Info() (os.FileInfo, error) { return e.info, nil }
