package vfs

import (
	"io"
	"os"
	"strings"
	"sync"
)

// Kind classifies injectable operations; rules match on a bitmask.
type Kind uint32

const (
	KindOpen Kind = 1 << iota
	KindCreate
	KindRead
	KindWrite
	KindSync
	KindSyncDir
	KindRename
	KindRemove
	KindTruncate

	// KindMutating covers every operation that changes durable state —
	// the crash-injection points of a workload.
	KindMutating = KindCreate | KindWrite | KindSync | KindSyncDir | KindRename | KindRemove | KindTruncate
	// KindAny matches every counted operation.
	KindAny = KindOpen | KindMutating | KindRead
)

func (k Kind) String() string {
	switch k {
	case KindOpen:
		return "open"
	case KindCreate:
		return "create"
	case KindRead:
		return "read"
	case KindWrite:
		return "write"
	case KindSync:
		return "sync"
	case KindSyncDir:
		return "syncdir"
	case KindRename:
		return "rename"
	case KindRemove:
		return "remove"
	case KindTruncate:
		return "truncate"
	}
	return "kind(mask)"
}

// Rule schedules one fault. A rule fires when an operation's kind is in
// the mask, its path contains PathContains, and its global op index
// (0-based, assigned in call order across the whole filesystem) is at
// least After — at most Count times (0 = unlimited).
type Rule struct {
	// Kind is the operation mask; zero means KindAny.
	Kind Kind
	// PathContains filters by substring of the operation's path; empty
	// matches all paths.
	PathContains string
	// After is the first global op index the rule may fire on.
	After int64
	// Count caps how many times the rule fires; 0 means unlimited.
	Count int
	// Err is returned from the faulted operation (e.g. syscall.ENOSPC,
	// or a generic I/O error for failed fsyncs). Defaults to
	// io.ErrShortWrite for ShortWrite rules and ErrCrashed for Crash
	// rules.
	Err error
	// ShortWrite makes a faulted write persist only the first half of
	// its bytes before failing — a torn write.
	ShortWrite bool
	// Crash invokes the injector's CrashFn (power loss) and fails the
	// operation, and every later one, with ErrCrashed.
	Crash bool

	fired int
}

// Injector wraps a filesystem and fails scheduled operations. Every
// operation flowing through it — FS calls and calls on files it opened —
// gets a global 0-based index; rules pick operations by kind, path and
// index, making fault schedules fully deterministic for a deterministic
// workload.
type Injector struct {
	inner FS
	// CrashFn is invoked by a Crash rule; wire it to MemFS.Crash.
	CrashFn func()
	// Observe, when set, is called for every counted operation before
	// rule matching — the crash-point harness uses it to record the
	// op schedule of a clean run. Called under the injector lock; must
	// not re-enter the filesystem.
	Observe func(index int64, kind Kind, path string)

	mu      sync.Mutex
	ops     int64
	rules   []*Rule
	crashed bool
}

// NewInjector wraps inner (nil means the OS filesystem) with an empty
// schedule: all operations pass through until rules are added.
func NewInjector(inner FS) *Injector {
	if inner == nil {
		inner = OS()
	}
	inj := &Injector{inner: inner}
	if m, ok := inner.(*MemFS); ok {
		inj.CrashFn = m.Crash
	}
	return inj
}

// Inner returns the wrapped filesystem.
func (i *Injector) Inner() FS { return i.inner }

// AddRule arms a fault.
func (i *Injector) AddRule(r Rule) {
	i.mu.Lock()
	defer i.mu.Unlock()
	rc := r
	i.rules = append(i.rules, &rc)
}

// ClearRules disarms every fault (clearing a simulated full disk, say)
// and un-sticks a previous Crash rule's error so a Restart-ed filesystem
// serves again.
func (i *Injector) ClearRules() {
	i.mu.Lock()
	defer i.mu.Unlock()
	i.rules = nil
	i.crashed = false
}

// Ops returns how many operations have been counted so far.
func (i *Injector) Ops() int64 {
	i.mu.Lock()
	defer i.mu.Unlock()
	return i.ops
}

// check assigns the operation its index and returns the rule to apply,
// if any.
func (i *Injector) check(kind Kind, path string) (*Rule, error) {
	i.mu.Lock()
	defer i.mu.Unlock()
	n := i.ops
	i.ops++
	if i.Observe != nil {
		i.Observe(n, kind, path)
	}
	if i.crashed {
		return nil, ErrCrashed
	}
	for _, r := range i.rules {
		mask := r.Kind
		if mask == 0 {
			mask = KindAny
		}
		if mask&kind == 0 || n < r.After {
			continue
		}
		if r.PathContains != "" && !strings.Contains(path, r.PathContains) {
			continue
		}
		if r.Count > 0 && r.fired >= r.Count {
			continue
		}
		r.fired++
		if r.Crash {
			i.crashed = true
		}
		return r, nil
	}
	return nil, nil
}

// fault resolves a fired rule into the error the operation reports,
// triggering the crash hook when asked.
func (i *Injector) fault(r *Rule) error {
	if r.Crash {
		if i.CrashFn != nil {
			i.CrashFn()
		}
		if r.Err != nil {
			return r.Err
		}
		return ErrCrashed
	}
	if r.Err != nil {
		return r.Err
	}
	if r.ShortWrite {
		return io.ErrShortWrite
	}
	return ErrCrashed
}

func (i *Injector) openKind(flag int) Kind {
	if flag&os.O_CREATE != 0 {
		return KindCreate
	}
	return KindOpen
}

func (i *Injector) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	r, err := i.check(i.openKind(flag), name)
	if err != nil {
		return nil, err
	}
	if r != nil {
		return nil, i.fault(r)
	}
	f, err := i.inner.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return &injFile{inj: i, f: f, path: name}, nil
}

func (i *Injector) Open(name string) (File, error) {
	r, err := i.check(KindOpen, name)
	if err != nil {
		return nil, err
	}
	if r != nil {
		return nil, i.fault(r)
	}
	f, err := i.inner.Open(name)
	if err != nil {
		return nil, err
	}
	return &injFile{inj: i, f: f, path: name}, nil
}

func (i *Injector) CreateTemp(dir, pattern string) (File, error) {
	r, err := i.check(KindCreate, dir+"/"+pattern)
	if err != nil {
		return nil, err
	}
	if r != nil {
		return nil, i.fault(r)
	}
	f, err := i.inner.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return &injFile{inj: i, f: f, path: f.Name()}, nil
}

func (i *Injector) Rename(oldpath, newpath string) error {
	r, err := i.check(KindRename, newpath)
	if err != nil {
		return err
	}
	if r != nil {
		return i.fault(r)
	}
	return i.inner.Rename(oldpath, newpath)
}

func (i *Injector) Remove(name string) error {
	r, err := i.check(KindRemove, name)
	if err != nil {
		return err
	}
	if r != nil {
		return i.fault(r)
	}
	return i.inner.Remove(name)
}

func (i *Injector) SyncDir(dir string) error {
	r, err := i.check(KindSyncDir, dir)
	if err != nil {
		return err
	}
	if r != nil {
		return i.fault(r)
	}
	return i.inner.SyncDir(dir)
}

func (i *Injector) ReadFile(name string) ([]byte, error) {
	r, err := i.check(KindRead, name)
	if err != nil {
		return nil, err
	}
	if r != nil {
		return nil, i.fault(r)
	}
	return i.inner.ReadFile(name)
}

// Metadata-only operations pass through uncounted: they neither change
// durable state nor make interesting crash points.
func (i *Injector) Stat(name string) (os.FileInfo, error)      { return i.inner.Stat(name) }
func (i *Injector) ReadDir(name string) ([]os.DirEntry, error) { return i.inner.ReadDir(name) }
func (i *Injector) MkdirAll(path string, perm os.FileMode) error {
	return i.inner.MkdirAll(path, perm)
}
func (i *Injector) TryLock(name string) (io.Closer, error) { return i.inner.TryLock(name) }

// injFile threads file operations back through the injector's schedule.
type injFile struct {
	inj  *Injector
	f    File
	path string
}

func (f *injFile) Name() string { return f.f.Name() }

func (f *injFile) Read(p []byte) (int, error) {
	r, err := f.inj.check(KindRead, f.path)
	if err != nil {
		return 0, err
	}
	if r != nil {
		return 0, f.inj.fault(r)
	}
	return f.f.Read(p)
}

func (f *injFile) ReadAt(p []byte, off int64) (int, error) {
	r, err := f.inj.check(KindRead, f.path)
	if err != nil {
		return 0, err
	}
	if r != nil {
		return 0, f.inj.fault(r)
	}
	return f.f.ReadAt(p, off)
}

func (f *injFile) shortWrite(p []byte, at int64, pos bool) (int, error) {
	half := p[:len(p)/2]
	if len(half) > 0 {
		if pos {
			f.f.WriteAt(half, at)
		} else {
			f.f.Write(half)
		}
	}
	return len(half), nil
}

func (f *injFile) Write(p []byte) (int, error) {
	r, err := f.inj.check(KindWrite, f.path)
	if err != nil {
		return 0, err
	}
	if r != nil {
		if r.ShortWrite {
			n, _ := f.shortWrite(p, 0, false)
			return n, f.inj.fault(r)
		}
		return 0, f.inj.fault(r)
	}
	return f.f.Write(p)
}

func (f *injFile) WriteAt(p []byte, off int64) (int, error) {
	r, err := f.inj.check(KindWrite, f.path)
	if err != nil {
		return 0, err
	}
	if r != nil {
		if r.ShortWrite {
			n, _ := f.shortWrite(p, off, true)
			return n, f.inj.fault(r)
		}
		return 0, f.inj.fault(r)
	}
	return f.f.WriteAt(p, off)
}

func (f *injFile) Sync() error {
	r, err := f.inj.check(KindSync, f.path)
	if err != nil {
		return err
	}
	if r != nil {
		return f.inj.fault(r)
	}
	return f.f.Sync()
}

func (f *injFile) Truncate(size int64) error {
	r, err := f.inj.check(KindTruncate, f.path)
	if err != nil {
		return err
	}
	if r != nil {
		return f.inj.fault(r)
	}
	return f.f.Truncate(size)
}

func (f *injFile) Seek(offset int64, whence int) (int64, error) {
	return f.f.Seek(offset, whence)
}
func (f *injFile) Stat() (os.FileInfo, error) { return f.f.Stat() }
func (f *injFile) Close() error               { return f.f.Close() }
