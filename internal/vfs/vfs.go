// Package vfs abstracts the filesystem operations the persistence stack
// performs, so that failure becomes a first-class, testable input. Three
// implementations share one interface: the passthrough OS filesystem
// (production — zero behavior change), an in-memory filesystem that
// models durability precisely enough to simulate power loss (unsynced
// bytes are dropped, possibly leaving a torn tail; directory entries not
// covered by a directory sync vanish), and a deterministic fault
// Injector that wraps either and fails scheduled operations with
// scheduled errors (ENOSPC, short writes, failed fsyncs, simulated
// crashes).
//
// The interface is deliberately narrow: exactly the operations
// internal/wal performs. Anything the store cannot do, a fault cannot be
// injected into, and anything it can do is injectable.
package vfs

import (
	"io"
	"os"
	"syscall"
)

// File is the per-file surface the persistence stack uses. *os.File
// satisfies it directly.
type File interface {
	io.Reader
	io.Writer
	io.ReaderAt
	io.WriterAt
	io.Seeker
	io.Closer
	// Name returns the path the file was opened with.
	Name() string
	// Sync forces the file's written bytes to stable storage.
	Sync() error
	// Truncate changes the file's size.
	Truncate(size int64) error
	// Stat returns the file's metadata.
	Stat() (os.FileInfo, error)
}

// FS is the filesystem surface the persistence stack uses.
type FS interface {
	// OpenFile is the generalized open call (os.OpenFile semantics).
	OpenFile(name string, flag int, perm os.FileMode) (File, error)
	// Open opens a file read-only.
	Open(name string) (File, error)
	// CreateTemp creates a new unique temporary file in dir
	// (os.CreateTemp semantics).
	CreateTemp(dir, pattern string) (File, error)
	// Rename atomically replaces newpath with oldpath's file.
	Rename(oldpath, newpath string) error
	// Remove unlinks a file; open handles keep reading the old contents.
	Remove(name string) error
	// Stat returns a file's metadata by path.
	Stat(name string) (os.FileInfo, error)
	// ReadDir lists a directory, sorted by filename.
	ReadDir(name string) ([]os.DirEntry, error)
	// MkdirAll creates a directory and any missing parents.
	MkdirAll(path string, perm os.FileMode) error
	// ReadFile reads a whole file.
	ReadFile(name string) ([]byte, error)
	// SyncDir fsyncs a directory, making its entries (creations,
	// renames, removals) durable. Best-effort on filesystems that
	// reject directory fsync.
	SyncDir(dir string) error
	// TryLock takes an exclusive advisory lock on the file at name,
	// creating it if needed, without blocking: a second holder gets an
	// error. Closing the returned handle releases the lock.
	TryLock(name string) (io.Closer, error)
}

// OS returns the passthrough operating-system filesystem.
func OS() FS { return osFS{} }

// OrOS returns fsys, or the OS filesystem when fsys is nil — the
// resolution every Options.FS consumer applies.
func OrOS(fsys FS) FS {
	if fsys == nil {
		return osFS{}
	}
	return fsys
}

// osFS is the passthrough implementation over package os.
type osFS struct{}

func (osFS) OpenFile(name string, flag int, perm os.FileMode) (File, error) {
	f, err := os.OpenFile(name, flag, perm)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Open(name string) (File, error) {
	f, err := os.Open(name)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) CreateTemp(dir, pattern string) (File, error) {
	f, err := os.CreateTemp(dir, pattern)
	if err != nil {
		return nil, err
	}
	return f, nil
}

func (osFS) Rename(oldpath, newpath string) error { return os.Rename(oldpath, newpath) }
func (osFS) Remove(name string) error             { return os.Remove(name) }
func (osFS) Stat(name string) (os.FileInfo, error) {
	return os.Stat(name)
}
func (osFS) ReadDir(name string) ([]os.DirEntry, error) { return os.ReadDir(name) }
func (osFS) MkdirAll(path string, perm os.FileMode) error {
	return os.MkdirAll(path, perm)
}
func (osFS) ReadFile(name string) ([]byte, error) { return os.ReadFile(name) }

func (osFS) SyncDir(dir string) error {
	d, err := os.Open(dir)
	if err != nil {
		return err
	}
	defer d.Close()
	if err := d.Sync(); err != nil && err != os.ErrInvalid {
		return err
	}
	return nil
}

// osLock holds an flock'd file; Close releases it.
type osLock struct{ f *os.File }

func (l osLock) Close() error {
	syscall.Flock(int(l.f.Fd()), syscall.LOCK_UN)
	return l.f.Close()
}

func (osFS) TryLock(name string) (io.Closer, error) {
	f, err := os.OpenFile(name, os.O_CREATE|os.O_RDWR, 0o644)
	if err != nil {
		return nil, err
	}
	if err := syscall.Flock(int(f.Fd()), syscall.LOCK_EX|syscall.LOCK_NB); err != nil {
		f.Close()
		return nil, err
	}
	return osLock{f}, nil
}
