package wormhole

import (
	"time"

	"github.com/repro/wormhole/internal/repl"
	"github.com/repro/wormhole/internal/shard"
	"github.com/repro/wormhole/internal/wal"
)

// FollowerConfig tunes a replication follower started with Replicate.
type FollowerConfig struct {
	// Leader is the leader server's address (a whkv serve -dir process, or
	// any netkv server wired with a replication source).
	Leader string
	// Dir roots the follower's own durable store. Its write-ahead log
	// records both the applied mutations and the applied leader positions,
	// so a restarted follower resumes the leader's tail instead of
	// resyncing. Empty means a volatile follower that resyncs from scratch
	// on every start.
	Dir string
	// Sync selects the follower store's durability policy (default
	// SyncNone: the follower can always re-fetch from the leader, so
	// paying per-record fsyncs buys little).
	Sync SyncPolicy
	// SyncInterval is the background flush cadence under
	// SyncPolicy(SyncInterval); default 100ms.
	SyncInterval time.Duration
	// AckInterval is how often applied positions are reported to the
	// leader (its lag observability; default 100ms).
	AckInterval time.Duration
	// AutoPromote arms leader-loss failover: when no leader contact
	// happens for HeartbeatTimeout, the follower promotes itself, bumping
	// the replication epoch past any it has observed so the old leader is
	// fenced on first contact with the new lineage.
	AutoPromote bool
	// HeartbeatTimeout is the leader silence that triggers auto-promotion
	// (default 2s; the leader heartbeats idle streams every 200ms).
	HeartbeatTimeout time.Duration
	// OnPromote, when non-nil, runs after an automatic promotion with the
	// newly-writable DB. Manual Promote calls do not invoke it.
	OnPromote func(*DB)
	// Logf, when non-nil, receives connection lifecycle messages
	// (disconnects, reconnect attempts).
	Logf func(format string, args ...any)
}

// ReplPosition identifies a point in the leader's per-shard record
// stream: Seq records of WAL generation Gen have been applied.
type ReplPosition struct {
	Gen uint64
	Seq uint64
}

// Follower is a read-only replica of a leader's store, kept converging by
// asynchronous WAL shipping: the leader streams each shard's write-ahead
// log from the follower's applied position (or a key-ordered snapshot of
// the shard when the position is unreachable — garbage-collected, or
// beyond a crashed leader's surviving history), and the follower applies
// records idempotently through the normal mutation path — so the
// lock-free read and scan paths below serve traffic the whole time,
// trailing the leader by a bounded tail. On the tail-replay path reads
// are per-shard prefix consistent: each shard's state is some prefix of
// the leader's commit order for that shard. During a snapshot catch-up
// that guarantee is suspended for the affected shard — the merge passes
// through mixed states (new values landed, stale keys not yet deleted)
// until it completes.
//
// Writes belong on the leader; Promote detaches the follower and hands
// the caller a writable store.
type Follower struct {
	f *repl.Follower
}

// Replicate connects a follower to a leader and starts streaming in the
// background. A fresh follower learns the leader's shard boundaries from
// the handshake; one restarted from an existing Dir resumes from its
// durable positions. The connection is maintained with reconnect-and-
// backoff until Promote or Close; Replicate itself fails fast when the
// leader is unreachable or incompatible.
func Replicate(c FollowerConfig) (*Follower, error) {
	o := repl.Options{
		Leader: c.Leader,
		Dir:    c.Dir,
		Durability: wal.Options{
			Sync:     wal.SyncPolicy(c.Sync),
			Interval: c.SyncInterval,
		},
		AckInterval:      c.AckInterval,
		AutoPromote:      c.AutoPromote,
		HeartbeatTimeout: c.HeartbeatTimeout,
		Logf:             c.Logf,
	}
	if c.OnPromote != nil {
		cb := c.OnPromote
		o.OnPromote = func(s *shard.Store) { cb(&DB{Sharded{s: s}}) }
	}
	f, err := repl.Start(o)
	if err != nil {
		return nil, err
	}
	return &Follower{f: f}, nil
}

// Get returns the value stored under key.
func (f *Follower) Get(key []byte) ([]byte, bool) { return f.f.Store().Get(key) }

// GetBatch looks up keys grouped by shard; vals[i], found[i] answer
// keys[i].
func (f *Follower) GetBatch(keys [][]byte) (vals [][]byte, found []bool) {
	return f.f.Store().GetBatch(keys)
}

// Count returns the number of keys across all shards.
func (f *Follower) Count() int64 { return f.f.Store().Count() }

// NumShards returns the number of partitions (the leader's).
func (f *Follower) NumShards() int { return f.f.Store().NumShards() }

// Scan visits keys >= start in ascending order until fn returns false.
func (f *Follower) Scan(start []byte, fn func(key, val []byte) bool) {
	f.f.Store().Scan(start, fn)
}

// ScanDesc visits keys <= start in descending order until fn returns
// false (nil start: from the largest key).
func (f *Follower) ScanDesc(start []byte, fn func(key, val []byte) bool) {
	f.f.Store().ScanDesc(start, fn)
}

// RangeAsc collects up to limit pairs with key >= start, ascending.
func (f *Follower) RangeAsc(start []byte, limit int) (keys, vals [][]byte) {
	return f.f.Store().RangeAsc(start, limit)
}

// RangeDesc collects up to limit pairs with key <= start, descending.
func (f *Follower) RangeDesc(start []byte, limit int) (keys, vals [][]byte) {
	return f.f.Store().RangeDesc(start, limit)
}

// Reader returns an amortized read handle over the follower store (one
// pinned reader per shard), like Sharded.Reader.
func (f *Follower) Reader() *ShardedReader {
	return &ShardedReader{r: f.f.Store().NewReader()}
}

// Applied returns the per-shard leader positions the follower has applied
// up to.
func (f *Follower) Applied() []ReplPosition {
	ps := f.f.Applied()
	out := make([]ReplPosition, len(ps))
	for i, p := range ps {
		out[i] = ReplPosition{Gen: p.Gen, Seq: p.Seq}
	}
	return out
}

// Lag returns the records between the leader's last-known end and the
// applied positions, summed over shards. known is false while the
// distance spans a WAL generation rotation (uncountable from positions)
// or before the first heartbeat.
func (f *Follower) Lag() (records int64, known bool) { return f.f.Lag() }

// Connected reports whether a stream to the leader is currently live.
func (f *Follower) Connected() bool { return f.f.Connected() }

// Epoch returns the replication epoch of the follower's own store. It
// grows only on promotion: a follower created at epoch e keeps it until
// Promote (manual or automatic) bumps past every epoch it has observed.
func (f *Follower) Epoch() uint64 { return f.f.Store().Epoch() }

// FencedBy returns the epoch that fenced this store, or zero while
// unfenced. A non-zero value means a higher-epoch leader exists and this
// store refuses writes until it resyncs into that lineage.
func (f *Follower) FencedBy() uint64 { return f.f.Store().FencedBy() }

// SnapshotsApplied returns how many shard snapshot catch-ups have run
// (zero when every byte arrived by tail replay).
func (f *Follower) SnapshotsApplied() int64 { return f.f.SnapshotsApplied() }

// CatchingUp returns the shards with a snapshot catch-up in progress:
// their reads pass through mixed states until the merge completes. After
// Promote it reports shards whose merge was abandoned half-finished —
// they may retain keys the leader had deleted.
func (f *Follower) CatchingUp() []int { return f.f.CatchingUp() }

// Promote detaches the follower from its leader and returns its store as
// a writable DB: clean promotion to standalone. The replication loop is
// fully stopped before Promote returns; the DB keeps every applied record
// and, when the follower had a Dir, its durability lifecycle (the caller
// now owns Close). Promoting mid snapshot catch-up abandons that merge:
// check CatchingUp afterwards — affected shards may retain keys the
// leader had deleted. Promotion bumps the store's replication epoch past
// every epoch observed from the leader, so the old leader is fenced on
// first contact with the new lineage. Returns nil after Close; repeated
// calls return the same store — at most one call bumps the epoch.
func (f *Follower) Promote() *DB {
	s := f.f.Promote()
	if s == nil {
		return nil
	}
	return &DB{Sharded{s: s}}
}

// Close stops replication and closes the follower store (unless Promote
// transferred ownership). Idempotent.
func (f *Follower) Close() error { return f.f.Close() }
