package wormhole

import (
	"bytes"
	"fmt"
	"testing"
	"time"

	"github.com/repro/wormhole/internal/netkv"
	"github.com/repro/wormhole/internal/repl"
	"github.com/repro/wormhole/internal/shard"
)

// startLeader runs a durable store as a replication leader the way whkv
// serve -dir does.
func startLeader(t *testing.T) (*shard.Store, string) {
	t.Helper()
	st, err := shard.Open(shard.Options{Dir: t.TempDir(), Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	src := repl.NewSource(st)
	srv, err := netkv.ServeOpts("127.0.0.1:0", st, netkv.ServerOptions{
		Subscribe: src.ServeSubscriber,
		StatFill:  src.FillStat,
	})
	if err != nil {
		st.Close()
		t.Fatal(err)
	}
	t.Cleanup(func() {
		src.Close()
		srv.Close()
		st.Close()
	})
	return st, srv.Addr()
}

func TestReplicatePublicAPI(t *testing.T) {
	leader, addr := startLeader(t)
	for i := 0; i < 500; i++ {
		leader.Set([]byte(fmt.Sprintf("pub-%04d", i)), []byte(fmt.Sprintf("val-%d", i)))
	}

	dir := t.TempDir()
	f, err := Replicate(FollowerConfig{Leader: addr, Dir: dir, AckInterval: 10 * time.Millisecond})
	if err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(10 * time.Second)
	for f.Count() != leader.Count() {
		if time.Now().After(deadline) {
			t.Fatalf("follower stuck at %d/%d keys", f.Count(), leader.Count())
		}
		time.Sleep(5 * time.Millisecond)
	}
	if v, ok := f.Get([]byte("pub-0042")); !ok || string(v) != "val-42" {
		t.Fatalf("follower read %q %v", v, ok)
	}
	if n := f.NumShards(); n != 2 {
		t.Fatalf("follower has %d shards", n)
	}

	// The scan surface mirrors the leader's ordered view.
	var got, want [][]byte
	f.Scan(nil, func(k, _ []byte) bool { got = append(got, append([]byte(nil), k...)); return true })
	leader.Scan(nil, func(k, _ []byte) bool { want = append(want, append([]byte(nil), k...)); return true })
	if len(got) != len(want) {
		t.Fatalf("scan lengths %d != %d", len(got), len(want))
	}
	for i := range got {
		if !bytes.Equal(got[i], want[i]) {
			t.Fatalf("scan diverges at %d: %q != %q", i, got[i], want[i])
		}
	}
	keys, _ := f.RangeAsc([]byte("pub-0100"), 3)
	if len(keys) != 3 || string(keys[0]) != "pub-0100" {
		t.Fatalf("RangeAsc: %q", keys)
	}
	r := f.Reader()
	if _, ok := r.Get([]byte("pub-0001")); !ok {
		t.Fatal("pinned reader miss")
	}
	r.Close()
	if lag, known := f.Lag(); known && lag != 0 {
		t.Fatalf("converged follower lag %d", lag)
	}
	if ap := f.Applied(); len(ap) != 2 {
		t.Fatalf("applied positions: %v", ap)
	}

	// Promotion hands over a writable durable DB that survives reopen.
	db := f.Promote()
	db.Set([]byte("written-after-promote"), []byte("w"))
	if err := db.Flush(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil { // no-op after Promote
		t.Fatal(err)
	}
	if err := db.Close(); err != nil {
		t.Fatal(err)
	}
	db2, err := Open(dir, DurableConfig{})
	if err != nil {
		t.Fatal(err)
	}
	defer db2.Close()
	if _, ok := db2.Get([]byte("written-after-promote")); !ok {
		t.Fatal("promoted write lost across reopen")
	}
	if _, ok := db2.Get([]byte("pub-0042")); !ok {
		t.Fatal("replicated key lost across reopen")
	}
}

func TestReplicateUnreachableLeader(t *testing.T) {
	if _, err := Replicate(FollowerConfig{Leader: "127.0.0.1:1"}); err == nil {
		t.Fatal("Replicate to a dead address succeeded")
	}
}
